//! The cycle-level L1 data cache with retention tracking (§4).
//!
//! [`DataCache`] models the paper's 64 KB / 4-way / 512-bit-block
//! write-back L1 with 2 read ports and 1 write port, built from 3T1D cells
//! whose per-line retention comes from a [`RetentionProfile`]. It
//! implements every retention scheme of the paper:
//!
//! * **Global refresh** (§4.1): a global counter triggers whole-cache
//!   refresh passes (2 K cycles through the shared sense amps), stealing
//!   one read and the write port for the duration.
//! * **Line-level refresh** (§4.3.1): no-refresh (expire + evict),
//!   partial-refresh (keep short-lived lines alive up to a threshold), and
//!   full-refresh, arbitrated one line at a time.
//! * **Placement policies** (§4.3.2): LRU, dead-sensitive DSP, and the
//!   retention-sensitive RSP-FIFO / RSP-LRU with their intrinsic refresh
//!   (8-cycle line moves through the 64 shared sense amplifiers).
//!
//! Port contention is explicit: demand accesses are rejected with
//! [`PortBusy`] while refresh or move work holds the shared ports, which
//! is how refresh overhead feeds back into pipeline performance.

use crate::geometry::Geometry;
use crate::l2::{L2Cache, L2Outcome, WriteBuffer};
use crate::policy::{RefreshPolicy, ReplacementPolicy, Scheme, WritePolicy};
use crate::retention::{CounterSpec, RetentionProfile};
use crate::stats::CacheStats;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Configuration of a [`DataCache`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    /// Logical geometry (64 KB / 64 B / 4-way in the paper).
    pub geometry: Geometry,
    /// Line-counter quantization.
    pub counter: CounterSpec,
    /// Retention scheme (refresh × replacement).
    pub scheme: Scheme,
    /// Load-to-use latency on a hit (3 cycles, §3.2).
    pub hit_latency: u32,
    /// Additional latency of an L2 hit.
    pub l2_latency: u32,
    /// Additional latency of an L2 miss (memory).
    pub mem_latency: u32,
    /// Extra penalty when a load tag-matches an expired/dead line and the
    /// pipeline must replay (§4.3.2).
    pub replay_penalty: u32,
    /// Cycles to move one 512-bit line between ways (8, §4.3.2).
    pub move_cycles: u32,
    /// Cycles to refresh one line in place (8, §4.1).
    pub refresh_cycles: u32,
    /// Store propagation policy (the paper's baseline is write-back).
    pub write_policy: WritePolicy,
}

impl CacheConfig {
    /// The paper's baseline configuration with a given scheme.
    pub fn paper(scheme: Scheme) -> Self {
        Self {
            geometry: Geometry::paper_l1d(),
            counter: CounterSpec::default(),
            scheme,
            hit_latency: 3,
            l2_latency: 12,
            mem_latency: 200,
            replay_penalty: 6,
            move_cycles: 8,
            refresh_cycles: 8,
            write_policy: WritePolicy::WriteBack,
        }
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self::paper(Scheme::default())
    }
}

/// A demand access type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A load (uses one of two read ports).
    Load,
    /// A store (uses the write port).
    Store,
}

/// Result of a successful (port-granted) access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether live data was found in the L1.
    pub hit: bool,
    /// Load-to-use latency in cycles.
    pub latency: u32,
    /// The access tag-matched a line whose retention had expired (or that
    /// sits in a dead way) — the replay-inducing case.
    pub expired: bool,
}

/// The access could not be granted this cycle: ports exhausted or stolen
/// by refresh/move work. Retry next cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortBusy;

impl std::fmt::Display for PortBusy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("cache ports busy this cycle")
    }
}

impl std::error::Error for PortBusy {}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Absolute cycle at which the data expires (`u64::MAX` = immortal).
    deadline: u64,
    /// Cycle the current data was filled (for partial-refresh aging).
    filled_at: u64,
    /// Bumped on every deadline change/invalidate; stales heap entries.
    epoch: u32,
}

/// Safety margin: line refreshes are scheduled this many cycles before the
/// quantized deadline (the paper's "conservatively set" counters).
const REFRESH_GUARD: u64 = 512;

/// Duty gap inserted after each line refresh so the refresh engine never
/// monopolizes its sub-array pair's ports (token-arbitrated refresh).
const REFRESH_DUTY_GAP: u64 = 4;

/// The retention-aware L1 data cache.
#[derive(Debug, Clone)]
pub struct DataCache {
    cfg: CacheConfig,
    retention: RetentionProfile,
    lines: Vec<Line>,
    /// Way order for every set, most recently used first, stored flat:
    /// set `s` owns `recency[s * ways .. (s + 1) * ways]`.
    recency: Vec<u8>,
    /// Ways ordered by descending retention (alive ways first), stored
    /// flat with the same `set * ways` indexing as `recency`.
    ret_order: Vec<u8>,
    /// Per-set count of non-dead ways.
    alive: Vec<u8>,
    l2: L2Cache,
    wb: WriteBuffer,
    stats: CacheStats,
    /// Per-sub-array-pair busy windows `(start, end)`: refresh/move work
    /// blocks demand accesses mapping to that pair while a window is open.
    busy: [VecDeque<(u64, u64)>; PAIRS],
    /// Next cycle the duty-limited line-refresh engine may start a refresh.
    refresh_slot: u64,
    refresh_q: BinaryHeap<Reverse<(u64, u32, u32)>>,
    expiry_q: BinaryHeap<Reverse<(u64, u32, u32)>>,
    cur_cycle: u64,
    loads_now: u8,
    stores_now: u8,
    /// Cycle of the most recent refresh-engine service, for the
    /// interarrival histogram (`None` until the first service).
    last_refresh: Option<u64>,
    /// Length of the current run of consecutive [`PortBusy`] rejections;
    /// flushed into the stall-run histogram by the next granted access.
    stall_run: u64,
    /// Global scheme: paced round-robin refresh state.
    next_global_due: u64,
    global_interval: u64,
    global_window: u64,
    global_rr: u32,
}

/// Sub-array pairs sharing sense amplifiers (4 in the paper layout);
/// refresh work blocks only its own pair.
const PAIRS: usize = 4;

/// Upper bound on associativity, so the victim path can stage a set's
/// retention order in a stack buffer instead of a heap copy.
const MAX_WAYS: usize = 16;

impl DataCache {
    /// Creates a cache over a retention profile.
    ///
    /// # Panics
    ///
    /// Panics if a per-line profile's length does not match the geometry,
    /// or if the global scheme is requested but infeasible for this chip
    /// (check with [`DataCache::global_scheme_feasible`] first — the paper
    /// discards such chips).
    pub fn new(cfg: CacheConfig, retention: RetentionProfile) -> Self {
        if let Some(lines) = retention.lines() {
            assert_eq!(
                lines,
                cfg.geometry.lines(),
                "retention profile does not match geometry"
            );
        }
        let sets = cfg.geometry.sets() as usize;
        let ways = cfg.geometry.ways();
        assert!(
            (ways as usize) <= MAX_WAYS,
            "associativity {ways} exceeds MAX_WAYS ({MAX_WAYS})"
        );
        let mut ret_order = Vec::with_capacity(sets * ways as usize);
        let mut alive = Vec::with_capacity(sets);
        let mut order = [0u8; MAX_WAYS];
        for set in 0..sets as u32 {
            let order = &mut order[..ways as usize];
            for (w, slot) in order.iter_mut().enumerate() {
                *slot = w as u8;
            }
            order.sort_by(|&a, &b| {
                let ra = retention.cycles(cfg.geometry.line_index(set, a as u32));
                let rb = retention.cycles(cfg.geometry.line_index(set, b as u32));
                rb.cmp(&ra)
            });
            let alive_count = order
                .iter()
                .filter(|&&w| !retention.is_dead(cfg.geometry.line_index(set, w as u32), &cfg.counter))
                .count() as u8;
            ret_order.extend_from_slice(order);
            alive.push(alive_count);
        }

        // The global scheme uses one global counter sized to the raw cache
        // retention (§4.1) — no per-line quantization.
        let global_usable = retention.min_cycles();
        if matches!(cfg.scheme.refresh, RefreshPolicy::Global) {
            assert!(
                Self::global_feasible_cycles(global_usable, &cfg),
                "chip is infeasible for the global refresh scheme \
                 (cache retention {} cycles vs refresh pass {} cycles)",
                global_usable,
                Self::global_pass_cycles(&cfg),
            );
        }

        let rows = (cfg.geometry.lines() as u64 / PAIRS as u64).max(1);
        let (next_global_due, global_interval, global_window) = match cfg.scheme.refresh {
            RefreshPolicy::Global if global_usable != u64::MAX => {
                // All four pairs refresh one row in parallel every
                // interval, so a full rotation (256 rows) completes one
                // guard period before the worst line expires.
                let interval = (global_usable.saturating_sub(REFRESH_GUARD) / rows)
                    .max(cfg.refresh_cycles as u64);
                let window = interval.min(cfg.refresh_cycles as u64);
                (interval, interval, window)
            }
            _ => (u64::MAX, u64::MAX, 0),
        };
        Self {
            lines: vec![Line::default(); cfg.geometry.lines() as usize],
            recency: (0..sets).flat_map(|_| 0..ways as u8).collect(),
            ret_order,
            alive,
            l2: L2Cache::paper(),
            wb: WriteBuffer::paper(),
            stats: CacheStats::default(),
            busy: std::array::from_fn(|_| VecDeque::new()),
            refresh_slot: 0,
            refresh_q: BinaryHeap::new(),
            expiry_q: BinaryHeap::new(),
            cur_cycle: 0,
            loads_now: 0,
            stores_now: 0,
            last_refresh: None,
            stall_run: 0,
            next_global_due,
            global_interval,
            global_window,
            global_rr: 0,
            cfg,
            retention,
        }
    }

    /// An ideal (infinite-retention, refresh-free) cache — the 6T SRAM
    /// reference model.
    pub fn ideal() -> Self {
        Self::new(
            CacheConfig::paper(Scheme::new(RefreshPolicy::None, ReplacementPolicy::Lru)),
            RetentionProfile::Infinite,
        )
    }

    /// Busy cycles one whole-cache refresh rotation costs: each sub-array
    /// pair refreshes its 256 lines in parallel, 8 cycles each (§4.1:
    /// 2 K cycles ≈ 476.3 ns at 4.3 GHz).
    pub fn global_pass_cycles(cfg: &CacheConfig) -> u64 {
        // lines per pair = lines / 4 pairs; sequential within a pair.
        (cfg.geometry.lines() as u64 / 4) * cfg.refresh_cycles as u64
    }

    fn global_feasible_cycles(global_usable: u64, cfg: &CacheConfig) -> bool {
        // A rotation (one 8-cycle refresh per row, all pairs in parallel)
        // must fit inside the cache retention minus the guard margin —
        // i.e. the retention must exceed the 2 K-cycle pass (§4.1).
        let rows = (cfg.geometry.lines() as u64 / PAIRS as u64).max(1);
        global_usable == u64::MAX
            || global_usable > cfg.refresh_cycles as u64 * rows + 2 * REFRESH_GUARD
    }

    /// Whether a chip (retention profile) can use the global scheme at all.
    pub fn global_scheme_feasible(profile: &RetentionProfile, cfg: &CacheConfig) -> bool {
        Self::global_feasible_cycles(profile.min_cycles(), cfg)
    }

    /// Usable lifetime of one line's data from the moment it is written:
    /// raw physical retention under the global scheme (one global counter),
    /// counter-quantized under the line-level schemes.
    fn lifetime(&self, idx: u32) -> u64 {
        match self.cfg.scheme.refresh {
            RefreshPolicy::Global => self.retention.cycles(idx),
            _ => self.retention.usable_cycles(idx, &self.cfg.counter),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The backside L2 model.
    pub fn l2(&self) -> &L2Cache {
        &self.l2
    }

    /// Fraction of this chip's lines that are dead under the counter spec.
    pub fn dead_line_fraction(&self) -> f64 {
        self.retention.dead_fraction(&self.cfg.counter)
    }

    // ------------------------------------------------------------------
    // Cycle advancement and the refresh engine
    // ------------------------------------------------------------------

    /// Advances internal engines to `cycle`. Called implicitly by
    /// [`DataCache::access`]; callers may invoke it directly to flush
    /// refresh work during idle periods.
    ///
    /// # Panics
    ///
    /// Panics if `cycle` moves backwards.
    pub fn advance(&mut self, cycle: u64) {
        assert!(cycle >= self.cur_cycle, "time must be monotone");
        if cycle != self.cur_cycle {
            self.cur_cycle = cycle;
            self.loads_now = 0;
            self.stores_now = 0;
        }
        // Engines process their backlog *retroactively at each event's due
        // time*, so idle periods (no demand accesses) behave as if the
        // hardware had been ticking throughout.
        self.run_global_engine(cycle);
        self.process_expiries(cycle);
        self.pump_refreshes(cycle);
        self.wb.tick(cycle);
        for q in &mut self.busy {
            while matches!(q.front(), Some(&(_, end)) if end <= cycle) {
                q.pop_front();
            }
        }
    }

    /// Books a refresh-engine service at `at`: records the interarrival
    /// gap since the previous service.
    fn note_refresh(&mut self, at: u64) {
        if let Some(prev) = self.last_refresh {
            self.stats.record_refresh_gap(at.saturating_sub(prev));
        }
        self.last_refresh = Some(at);
    }

    /// Books the loss of a line to retention at `at` (expiry miss,
    /// deadline eviction, or refresh overrun): records its age and emits
    /// the `line.dead` simulator trace event.
    fn note_dead_line(&mut self, at: u64, filled_at: u64) {
        let age = at.saturating_sub(filled_at);
        self.stats.record_dead_age(age);
        obs::trace::sim_value("cachesim", "line.dead", at, "age_cycles", age as f64);
    }

    /// The sub-array pair a physical line belongs to: lines are laid out
    /// pair-major (256 consecutive rows per pair in the paper layout), so
    /// a set's ways all live in the same pair.
    fn pair_of(&self, idx: u32) -> usize {
        let per_pair = (self.cfg.geometry.lines() as usize / PAIRS).max(1);
        ((idx as usize) / per_pair).min(PAIRS - 1)
    }

    /// Opens a port-blocking window on a pair, merging with the previous
    /// window when they touch. Returns the window end.
    fn add_window(&mut self, pair: usize, start: u64, len: u64) -> u64 {
        self.stats.blocked_cycles += len;
        let q = &mut self.busy[pair];
        if let Some(last) = q.back_mut() {
            let start = start.max(last.0);
            if start <= last.1 {
                last.1 = last.1.max(start + len);
                return last.1;
            }
            q.push_back((start, start + len));
            return start + len;
        }
        q.push_back((start, start + len));
        start + len
    }

    /// Whether demand accesses to `pair` are blocked at `cycle`.
    fn pair_blocked(&self, pair: usize, cycle: u64) -> bool {
        self.busy[pair]
            .iter()
            .take_while(|w| w.0 <= cycle)
            .any(|w| cycle < w.1)
    }

    /// §4.1 global scheme: every `global_interval` cycles all four
    /// sub-array pairs refresh one row in parallel (an 8-cycle window on
    /// each pair), walking the rows round-robin so a full rotation — the
    /// 2 K-cycle "refresh pass" — completes within the cache retention.
    /// The short, spread-out windows are the "8 % of cache bandwidth" the
    /// paper hides in port under-utilization.
    fn run_global_engine(&mut self, cycle: u64) {
        while cycle >= self.next_global_due {
            let due = self.next_global_due;
            self.next_global_due += self.global_interval;
            self.note_refresh(due);
            obs::trace::sim_instant("cachesim", "refresh.issued", due);
            let rows = (self.cfg.geometry.lines() / PAIRS as u32).max(1);
            let row = self.global_rr;
            self.global_rr = (self.global_rr + 1) % rows;
            if self.global_rr == 0 {
                self.stats.global_passes += 1;
            }
            for pair in 0..PAIRS {
                let idx = pair as u32 * rows + row;
                let end = self.add_window(pair, due, self.global_window);
                self.stats.refreshes += 1;
                let lifetime = match &self.retention {
                    RetentionProfile::Infinite => u64::MAX,
                    RetentionProfile::PerLine(v) => v[idx as usize],
                };
                let line = &mut self.lines[idx as usize];
                if line.valid {
                    line.deadline = end.saturating_add(lifetime);
                    line.epoch = line.epoch.wrapping_add(1);
                }
            }
        }
    }

    fn process_expiries(&mut self, cycle: u64) {
        while let Some(&Reverse((due, idx, epoch))) = self.expiry_q.peek() {
            if due > cycle {
                break;
            }
            self.expiry_q.pop();
            let line = &mut self.lines[idx as usize];
            if line.epoch != epoch || !line.valid || !line.dirty {
                continue;
            }
            // A dirty line is expiring. Write it back if the buffer has
            // room; otherwise refresh it in place (§4.3.1 stall handling).
            let addr = self
                .cfg
                .geometry
                .address_of(line.tag, idx / self.cfg.geometry.ways());
            if self.wb.try_push(due) {
                let filled_at = line.filled_at;
                line.valid = false;
                line.epoch = line.epoch.wrapping_add(1);
                self.stats.writebacks += 1;
                self.stats.expiry_writebacks += 1;
                self.l2.fill_writeback(addr);
                self.note_dead_line(due, filled_at);
                obs::trace::sim_value("cachesim", "eviction.retention", due, "line", idx as f64);
            } else {
                let usable = self.retention.usable_cycles(idx, &self.cfg.counter);
                if usable == 0 {
                    // A dirty line in a dead way cannot be refreshed in
                    // place (zero usable lifetime: the new deadline would
                    // equal `due` and the full buffer would be retried at
                    // the same cycle forever). The cell never truly held
                    // the data; count the loss as a refresh overrun.
                    let filled_at = line.filled_at;
                    line.valid = false;
                    line.epoch = line.epoch.wrapping_add(1);
                    self.stats.refresh_overruns += 1;
                    self.note_dead_line(due, filled_at);
                    continue;
                }
                line.deadline = due + usable;
                line.epoch = line.epoch.wrapping_add(1);
                self.stats.writeback_stall_refreshes += 1;
                let pair = self.pair_of(idx);
                self.add_window(pair, due, self.cfg.refresh_cycles as u64);
                let e = self.lines[idx as usize].epoch;
                let d = self.lines[idx as usize].deadline;
                self.expiry_q.push(Reverse((d, idx, e)));
            }
        }
    }

    fn pump_refreshes(&mut self, cycle: u64) {
        while let Some(&Reverse((due, idx, epoch))) = self.refresh_q.peek() {
            if due > cycle {
                break;
            }
            self.refresh_q.pop();
            let line = self.lines[idx as usize];
            if line.epoch != epoch || !line.valid {
                continue;
            }
            let start = self.refresh_slot.max(due);
            let done = start + self.cfg.refresh_cycles as u64;
            // Integrity safeguard: refresh could not be serviced in time
            // (queue backlog pushed it past the true expiry).
            if line.deadline <= done {
                self.lines[idx as usize].valid = false;
                self.lines[idx as usize].epoch = line.epoch.wrapping_add(1);
                self.stats.refresh_overruns += 1;
                self.note_dead_line(done, line.filled_at);
                continue;
            }
            let usable = self.retention.usable_cycles(idx, &self.cfg.counter);
            let pair = self.pair_of(idx);
            self.add_window(pair, start, self.cfg.refresh_cycles as u64);
            // Token-style duty gap: the engine yields port time between
            // line refreshes so demand never starves.
            self.refresh_slot = done + REFRESH_DUTY_GAP;
            self.stats.refreshes += 1;
            self.note_refresh(start);
            obs::trace::sim_value("cachesim", "refresh.issued", start, "line", idx as f64);
            obs::trace::sim_instant("cachesim", "refresh.completed", done);

            let l = &mut self.lines[idx as usize];
            l.deadline = done + usable;
            l.epoch = l.epoch.wrapping_add(1);
            let epoch = l.epoch;
            let deadline = l.deadline;
            let dirty = l.dirty;
            let filled_at = l.filled_at;
            self.arm_refresh(idx, deadline, epoch, filled_at);
            if dirty {
                self.expiry_q.push(Reverse((deadline, idx, epoch)));
            }
        }
    }

    /// Schedules the next in-place refresh for a line if its policy calls
    /// for one before the given deadline.
    fn arm_refresh(&mut self, idx: u32, deadline: u64, epoch: u32, filled_at: u64) {
        let wants = match self.cfg.scheme.refresh {
            RefreshPolicy::Full => true,
            RefreshPolicy::Partial { threshold_cycles } => {
                let usable = self.retention.usable_cycles(idx, &self.cfg.counter);
                // Only short-lived lines participate, and only until their
                // age passes the threshold.
                usable < threshold_cycles
                    && deadline.saturating_sub(filled_at) < threshold_cycles
            }
            _ => false,
        };
        if wants && deadline != u64::MAX {
            let due = deadline.saturating_sub(REFRESH_GUARD);
            self.refresh_q.push(Reverse((due, idx, epoch)));
        }
    }

    // ------------------------------------------------------------------
    // Demand access path
    // ------------------------------------------------------------------

    /// Performs one demand access at `cycle`.
    ///
    /// # Errors
    ///
    /// Returns [`PortBusy`] when the required port is unavailable this
    /// cycle (all ports consumed, or refresh/move work holds one read port
    /// and the write port).
    pub fn access(
        &mut self,
        cycle: u64,
        addr: u64,
        kind: AccessKind,
    ) -> Result<AccessResult, PortBusy> {
        self.advance(cycle);

        // Refresh/move work on the target set's sub-array pair steals one
        // read port and the write port (§4.1): one read port remains for
        // loads, stores must wait for the window to close. All ways of a
        // set live in the same pair.
        let set_pair = {
            let set = self.cfg.geometry.set_of(addr);
            self.pair_of(self.cfg.geometry.line_index(set, 0))
        };
        let pair_busy = self.pair_blocked(set_pair, cycle);
        let (load_ports, store_ports) = if pair_busy { (1, 0) } else { (2, 1) };
        match kind {
            AccessKind::Load if self.loads_now >= load_ports => {
                self.stats.port_conflicts += 1;
                self.stall_run += 1;
                return Err(PortBusy);
            }
            AccessKind::Store if self.stores_now >= store_ports => {
                self.stats.port_conflicts += 1;
                self.stall_run += 1;
                return Err(PortBusy);
            }
            _ => {}
        }
        // A granted access ends any run of consecutive port stalls.
        if self.stall_run > 0 {
            self.stats.record_stall_run(self.stall_run);
            obs::trace::sim_value("cachesim", "stall.run", cycle, "len", self.stall_run as f64);
            self.stall_run = 0;
        }
        match kind {
            AccessKind::Load => {
                self.loads_now += 1;
                self.stats.loads += 1;
            }
            AccessKind::Store => {
                self.stores_now += 1;
                self.stats.stores += 1;
            }
        }

        let set = self.cfg.geometry.set_of(addr);
        let tag = self.cfg.geometry.tag_of(addr);
        let ways = self.cfg.geometry.ways();

        // Tag search.
        let mut matched: Option<(u32, bool)> = None; // (way, live)
        for way in 0..ways {
            let idx = self.cfg.geometry.line_index(set, way) as usize;
            let line = &self.lines[idx];
            if line.valid && line.tag == tag {
                matched = Some((way, cycle < line.deadline));
                break;
            }
        }

        match matched {
            Some((way, true)) => Ok(self.do_hit(cycle, set, way, kind)),
            Some((way, false)) => {
                // Tag matched but the data has expired in place: replay.
                let idx = self.cfg.geometry.line_index(set, way) as usize;
                if self.lines[idx].dirty {
                    // Eager expiry should have drained dirty lines.
                    self.stats.refresh_overruns += 1;
                }
                let filled_at = self.lines[idx].filled_at;
                self.lines[idx].valid = false;
                self.lines[idx].epoch = self.lines[idx].epoch.wrapping_add(1);
                self.stats.expiry_misses += 1;
                self.note_dead_line(cycle, filled_at);
                let latency = self.do_miss(cycle, set, tag, addr, kind);
                Ok(AccessResult {
                    hit: false,
                    latency: latency + self.cfg.replay_penalty,
                    expired: true,
                })
            }
            None => {
                self.stats.tag_misses += 1;
                let latency = self.do_miss(cycle, set, tag, addr, kind);
                Ok(AccessResult {
                    hit: false,
                    latency,
                    expired: false,
                })
            }
        }
    }

    fn do_hit(&mut self, cycle: u64, set: u32, way: u32, kind: AccessKind) -> AccessResult {
        self.stats.hits += 1;
        self.touch_recency(set, way);

        let idx = self.cfg.geometry.line_index(set, way);
        let age = cycle.saturating_sub(self.lines[idx as usize].filled_at);
        self.stats.record_hit_age(age);
        if kind == AccessKind::Store {
            // A store rewrites the cells: retention restarts.
            let write_through = self.cfg.write_policy == WritePolicy::WriteThrough;
            let usable = self.lifetime(idx);
            let l = &mut self.lines[idx as usize];
            l.dirty = !write_through;
            l.deadline = cycle.saturating_add(usable);
            l.filled_at = cycle;
            l.epoch = l.epoch.wrapping_add(1);
            let (deadline, epoch, filled_at, dirty) = (l.deadline, l.epoch, l.filled_at, l.dirty);
            if write_through {
                // The store also goes to the L2 through the write buffer.
                let tag = l.tag;
                let addr = self.cfg.geometry.address_of(tag, set);
                let _ = self.wb.try_push(cycle);
                self.l2.fill_writeback(addr);
                self.stats.writebacks += 1;
            }
            if dirty && deadline != u64::MAX {
                self.expiry_q.push(Reverse((deadline, idx, epoch)));
            }
            self.arm_refresh(idx, deadline, epoch, filled_at);
        }

        if self.cfg.scheme.replacement == ReplacementPolicy::RspLru {
            self.rsp_lru_promote(cycle, set, way);
        }

        AccessResult {
            hit: true,
            latency: self.cfg.hit_latency,
            expired: false,
        }
    }

    fn do_miss(&mut self, cycle: u64, set: u32, tag: u64, addr: u64, kind: AccessKind) -> u32 {
        let l2_outcome = self.l2.access(self.cfg.geometry.block_base(addr));
        let mut latency = self.cfg.hit_latency + self.cfg.l2_latency;
        if l2_outcome == L2Outcome::Miss {
            latency += self.cfg.mem_latency;
            self.stats.l2_misses += 1;
        }

        match self.cfg.scheme.replacement {
            ReplacementPolicy::Lru => {
                let way = self.lru_victim(set, false);
                latency += self.fill(cycle, set, way, tag, kind);
            }
            ReplacementPolicy::Dsp => {
                if self.alive[set as usize] == 0 {
                    // Every way dead: the set cannot cache anything.
                    self.stats.all_ways_dead_misses += 1;
                    self.stats.tag_misses = self.stats.tag_misses.saturating_sub(1);
                    self.uncached_store_through(cycle, addr, kind);
                    return latency;
                }
                let way = self.lru_victim(set, true);
                latency += self.fill(cycle, set, way, tag, kind);
            }
            ReplacementPolicy::RspFifo | ReplacementPolicy::RspLru => {
                if self.alive[set as usize] == 0 {
                    self.stats.all_ways_dead_misses += 1;
                    self.stats.tag_misses = self.stats.tag_misses.saturating_sub(1);
                    self.uncached_store_through(cycle, addr, kind);
                    return latency;
                }
                latency += self.rsp_fill(cycle, set, tag, kind);
            }
        }
        latency
    }

    /// A store that cannot be cached (all ways of its set dead) writes
    /// through to the L2 regardless of the write policy — dirty data must
    /// never be silently dropped.
    fn uncached_store_through(&mut self, cycle: u64, addr: u64, kind: AccessKind) {
        if kind == AccessKind::Store {
            let _ = self.wb.try_push(cycle);
            self.l2.fill_writeback(self.cfg.geometry.block_base(addr));
            self.stats.writebacks += 1;
        }
    }

    /// Range of a set's slots in the flat `recency` / `ret_order` arrays.
    fn set_range(&self, set: u32) -> std::ops::Range<usize> {
        let ways = self.cfg.geometry.ways() as usize;
        let base = set as usize * ways;
        base..base + ways
    }

    /// Victim selection: least recently used way; `alive_only` restricts
    /// the choice to non-dead ways (DSP). Prefers invalid ways.
    fn lru_victim(&self, set: u32, alive_only: bool) -> u32 {
        let rec = &self.recency[self.set_range(set)];
        // Prefer an invalid candidate way.
        for &way in rec.iter().rev() {
            if alive_only && self.is_dead_way(set, way as u32) {
                continue;
            }
            let idx = self.cfg.geometry.line_index(set, way as u32) as usize;
            if !self.lines[idx].valid {
                return way as u32;
            }
        }
        for &way in rec.iter().rev() {
            if alive_only && self.is_dead_way(set, way as u32) {
                continue;
            }
            return way as u32;
        }
        unreachable!("caller guarantees at least one candidate way");
    }

    fn is_dead_way(&self, set: u32, way: u32) -> bool {
        self.retention
            .is_dead(self.cfg.geometry.line_index(set, way), &self.cfg.counter)
    }

    /// Fills `way` with a new block. Returns extra latency from a dirty
    /// eviction stalling on a full write buffer.
    fn fill(&mut self, cycle: u64, set: u32, way: u32, tag: u64, kind: AccessKind) -> u32 {
        let idx = self.cfg.geometry.line_index(set, way);
        let mut extra = 0u32;

        // Evict the previous occupant.
        let old = self.lines[idx as usize];
        if old.valid && old.dirty && cycle < old.deadline {
            let victim_addr = self.cfg.geometry.address_of(old.tag, set);
            if !self.wb.try_push(cycle) {
                // Stall until a slot drains.
                extra += 8;
                self.wb.tick(cycle + 8);
                let _ = self.wb.try_push(cycle + 8);
            }
            self.stats.writebacks += 1;
            self.l2.fill_writeback(victim_addr);
        }

        let dead = self.is_dead_way(set, way);
        if dead {
            self.stats.dead_way_events += 1;
        }
        let usable = self.lifetime(idx);
        let write_through = self.cfg.write_policy == WritePolicy::WriteThrough;
        if kind == AccessKind::Store && write_through {
            let addr = self.cfg.geometry.address_of(tag, set);
            let _ = self.wb.try_push(cycle);
            self.l2.fill_writeback(addr);
            self.stats.writebacks += 1;
        }
        let l = &mut self.lines[idx as usize];
        l.tag = tag;
        l.valid = true;
        l.dirty = kind == AccessKind::Store && !write_through;
        // A dead way cannot hold data: it expires instantly, so the next
        // access tag-matches stale data and replays (the LRU pathology).
        l.deadline = cycle.saturating_add(usable);
        l.filled_at = cycle;
        l.epoch = l.epoch.wrapping_add(1);
        let (deadline, epoch, filled_at, dirty) = (l.deadline, l.epoch, l.filled_at, l.dirty);

        self.touch_recency(set, way);
        if dirty && deadline != u64::MAX {
            self.expiry_q.push(Reverse((deadline, idx, epoch)));
        }
        self.arm_refresh(idx, deadline, epoch, filled_at);
        extra
    }

    /// RSP fill: the new block takes the longest-retention way; existing
    /// blocks shift down one retention rank (each shift is an 8-cycle line
    /// move through the shared sense amps and restarts that line's
    /// retention). Returns extra latency from dirty-eviction stalls.
    fn rsp_fill(&mut self, cycle: u64, set: u32, tag: u64, kind: AccessKind) -> u32 {
        let alive = self.alive[set as usize] as usize;
        // Stage the alive prefix of the set's retention order in a stack
        // buffer: the shift loop below mutates `self.lines`, so borrowing
        // `self.ret_order` directly would not pass the borrow checker, and
        // a heap `to_vec()` here sits on the victim path of every fill.
        let base = self.set_range(set).start;
        let mut order = [0u8; MAX_WAYS];
        order[..alive].copy_from_slice(&self.ret_order[base..base + alive]);
        let order = &order[..alive];

        // Find how deep the shift must go: up to the first invalid way, or
        // the whole alive span (evicting the last).
        let mut depth = alive;
        for (rank, &way) in order.iter().enumerate() {
            let idx = self.cfg.geometry.line_index(set, way as u32) as usize;
            let line = &self.lines[idx];
            if !line.valid || cycle >= line.deadline {
                depth = rank + 1;
                break;
            }
        }

        let mut extra = 0u32;
        // Evict the occupant of the deepest rank if it is live data.
        let last_way = order[depth - 1] as u32;
        let last_idx = self.cfg.geometry.line_index(set, last_way) as usize;
        let old = self.lines[last_idx];
        if old.valid && old.dirty && cycle < old.deadline && depth == alive {
            let victim_addr = self.cfg.geometry.address_of(old.tag, set);
            if !self.wb.try_push(cycle) {
                extra += 8;
                self.wb.tick(cycle + 8);
                let _ = self.wb.try_push(cycle + 8);
            }
            self.stats.writebacks += 1;
            self.l2.fill_writeback(victim_addr);
        }

        // Shift blocks down: rank k-1 → rank k, for k = depth-1 .. 1.
        let mut moves = 0u64;
        for k in (1..depth).rev() {
            let src_way = order[k - 1] as u32;
            let dst_way = order[k] as u32;
            let src_idx = self.cfg.geometry.line_index(set, src_way) as usize;
            let dst_idx = self.cfg.geometry.line_index(set, dst_way);
            let src = self.lines[src_idx];
            if !src.valid || cycle >= src.deadline {
                // Nothing live to move.
                let l = &mut self.lines[dst_idx as usize];
                l.valid = false;
                l.epoch = l.epoch.wrapping_add(1);
                continue;
            }
            let usable = self.lifetime(dst_idx);
            let l = &mut self.lines[dst_idx as usize];
            l.tag = src.tag;
            l.valid = true;
            l.dirty = src.dirty;
            l.deadline = cycle.saturating_add(usable);
            l.filled_at = src.filled_at;
            l.epoch = l.epoch.wrapping_add(1);
            let (deadline, epoch, filled_at, dirty) = (l.deadline, l.epoch, l.filled_at, l.dirty);
            if dirty && deadline != u64::MAX {
                self.expiry_q.push(Reverse((deadline, dst_idx, epoch)));
            }
            self.arm_refresh(dst_idx, deadline, epoch, filled_at);
            moves += 1;
        }
        if moves > 0 {
            self.stats.line_moves += moves;
            // The shuffle overlaps the L2 fill window: only work beyond
            // the fill latency blocks the pair's ports.
            let work = (moves * self.cfg.move_cycles as u64)
                .saturating_sub(self.cfg.l2_latency as u64);
            if work > 0 {
                let pair = self.pair_of(self.cfg.geometry.line_index(set, 0));
                self.add_window(pair, cycle, work);
            }
        }

        // Place the new block at the top rank.
        let top_way = order[0] as u32;
        let top_idx = self.cfg.geometry.line_index(set, top_way);
        let usable = self.lifetime(top_idx);
        let write_through = self.cfg.write_policy == WritePolicy::WriteThrough;
        if kind == AccessKind::Store && write_through {
            let addr = self.cfg.geometry.address_of(tag, set);
            let _ = self.wb.try_push(cycle);
            self.l2.fill_writeback(addr);
            self.stats.writebacks += 1;
        }
        let l = &mut self.lines[top_idx as usize];
        l.tag = tag;
        l.valid = true;
        l.dirty = kind == AccessKind::Store && !write_through;
        l.deadline = cycle.saturating_add(usable);
        l.filled_at = cycle;
        l.epoch = l.epoch.wrapping_add(1);
        let (deadline, epoch, filled_at, dirty) = (l.deadline, l.epoch, l.filled_at, l.dirty);
        self.touch_recency(set, top_way);
        if dirty && deadline != u64::MAX {
            self.expiry_q.push(Reverse((deadline, top_idx, epoch)));
        }
        self.arm_refresh(top_idx, deadline, epoch, filled_at);
        extra
    }

    /// RSP-LRU: keep the most recently accessed block in the longest-
    /// retention way by swapping it with the current top occupant
    /// (two 8-cycle line moves; both lines are rewritten).
    fn rsp_lru_promote(&mut self, cycle: u64, set: u32, way: u32) {
        let top_way = self.ret_order[self.set_range(set).start] as u32;
        if way == top_way {
            return;
        }
        let a_idx = self.cfg.geometry.line_index(set, way);
        let b_idx = self.cfg.geometry.line_index(set, top_way);
        let a = self.lines[a_idx as usize];
        let b = self.lines[b_idx as usize];

        let place = |cache: &mut DataCache, dst: u32, src: Line| {
            let usable = cache.lifetime(dst);
            let l = &mut cache.lines[dst as usize];
            l.tag = src.tag;
            l.valid = src.valid && cycle < src.deadline;
            l.dirty = src.dirty && l.valid;
            l.deadline = cycle.saturating_add(usable);
            l.filled_at = src.filled_at;
            l.epoch = l.epoch.wrapping_add(1);
            let (valid, dirty, deadline, epoch, filled_at) =
                (l.valid, l.dirty, l.deadline, l.epoch, l.filled_at);
            if valid {
                if dirty && deadline != u64::MAX {
                    cache.expiry_q.push(Reverse((deadline, dst, epoch)));
                }
                cache.arm_refresh(dst, deadline, epoch, filled_at);
            }
        };
        place(self, b_idx, a);
        place(self, a_idx, b);

        self.stats.line_moves += 2;
        // The two moves of a swap pipeline through the shared sense amps:
        // one window of move_cycles blocks the pair.
        let work = self.cfg.move_cycles as u64;
        let pair = self.pair_of(a_idx);
        self.add_window(pair, cycle, work);
    }

    fn touch_recency(&mut self, set: u32, way: u32) {
        let range = self.set_range(set);
        let rec = &mut self.recency[range];
        if let Some(pos) = rec.iter().position(|&w| w as u32 == way) {
            rec[..=pos].rotate_right(1);
        }
    }

    /// Checks the cache's structural invariants, returning a description
    /// of the first violation found. Intended for property tests: call it
    /// after an arbitrary access sequence to assert the replacement and
    /// refresh machinery never corrupted the per-set bookkeeping.
    ///
    /// Invariants checked for every set:
    ///
    /// 1. `recency` is a permutation of the set's way numbers;
    /// 2. `ret_order` is a permutation ordered by non-increasing physical
    ///    retention;
    /// 3. `alive` equals the count of non-dead ways;
    /// 4. under line-level schemes, a valid line in a dead way has
    ///    `deadline == filled_at` (zero usable lifetime — it can never
    ///    serve a hit);
    /// 5. *no resurrection*: with no refresh engine (`RefreshPolicy::None`,
    ///    LRU/DSP placement) and no write-buffer-stall refreshes, every
    ///    valid line's deadline is at most `filled_at + lifetime` — nothing
    ///    may extend data past its retention deadline. (RSP line moves and
    ///    §4.3.1 stall refreshes legitimately rewrite cells, so the bound
    ///    only binds when neither can occur.)
    pub fn audit(&self) -> Result<(), String> {
        let ways = self.cfg.geometry.ways();
        let line_level = !matches!(self.cfg.scheme.refresh, RefreshPolicy::Global);
        let no_resurrection = self.cfg.scheme.refresh == RefreshPolicy::None
            && matches!(
                self.cfg.scheme.replacement,
                ReplacementPolicy::Lru | ReplacementPolicy::Dsp
            )
            && self.stats.writeback_stall_refreshes == 0;
        for set in 0..self.cfg.geometry.sets() {
            let range = self.set_range(set);
            for (label, order) in [
                ("recency", &self.recency[range.clone()]),
                ("ret_order", &self.ret_order[range.clone()]),
            ] {
                let mut seen = [false; MAX_WAYS];
                for &w in order {
                    if (w as u32) >= ways || std::mem::replace(&mut seen[w as usize], true) {
                        return Err(format!(
                            "set {set}: {label} {order:?} is not a permutation of 0..{ways}"
                        ));
                    }
                }
            }
            let ret = &self.ret_order[range];
            for pair in ret.windows(2) {
                let ra = self
                    .retention
                    .cycles(self.cfg.geometry.line_index(set, pair[0] as u32));
                let rb = self
                    .retention
                    .cycles(self.cfg.geometry.line_index(set, pair[1] as u32));
                if ra < rb {
                    return Err(format!(
                        "set {set}: ret_order {ret:?} not sorted by descending retention"
                    ));
                }
            }
            let alive_count = (0..ways).filter(|&w| !self.is_dead_way(set, w)).count();
            if self.alive[set as usize] as usize != alive_count {
                return Err(format!(
                    "set {set}: alive count {} != actual {alive_count}",
                    self.alive[set as usize]
                ));
            }
            for way in 0..ways {
                let idx = self.cfg.geometry.line_index(set, way);
                let line = &self.lines[idx as usize];
                if !line.valid {
                    continue;
                }
                if line_level && self.is_dead_way(set, way) && line.deadline != line.filled_at {
                    return Err(format!(
                        "set {set} way {way}: valid line in a dead way has usable \
                         lifetime (deadline {} != filled_at {})",
                        line.deadline, line.filled_at
                    ));
                }
                if no_resurrection {
                    let bound = line.filled_at.saturating_add(self.lifetime(idx));
                    if line.deadline > bound {
                        return Err(format!(
                            "set {set} way {way}: line resurrected past retention \
                             (deadline {} > filled_at {} + lifetime)",
                            line.deadline, line.filled_at
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache_with(scheme: Scheme, retentions: Vec<u64>) -> DataCache {
        let cfg = CacheConfig::paper(scheme);
        DataCache::new(cfg, RetentionProfile::PerLine(retentions))
    }

    fn uniform(scheme: Scheme, ret: u64) -> DataCache {
        cache_with(scheme, vec![ret; 1024])
    }

    fn addr_for(set: u32, tag: u64) -> u64 {
        Geometry::paper_l1d().address_of(tag, set)
    }

    #[test]
    fn ideal_cache_hits_after_fill() {
        let mut c = DataCache::ideal();
        let a = addr_for(3, 7);
        let r = c.access(0, a, AccessKind::Load).unwrap();
        assert!(!r.hit);
        assert_eq!(r.latency, 3 + 12 + 200); // cold: misses L2 too
        let r = c.access(10, a, AccessKind::Load).unwrap();
        assert!(r.hit);
        assert_eq!(r.latency, 3);
    }

    #[test]
    fn second_block_same_l2_line_hits_l2() {
        let mut c = DataCache::ideal();
        let a = addr_for(0, 1);
        c.access(0, a, AccessKind::Load).unwrap();
        // Evict by filling the same set with 4 other tags, then return.
        for (i, tag) in (2..6u64).enumerate() {
            c.access(1 + i as u64, addr_for(0, tag), AccessKind::Load)
                .unwrap();
        }
        // `a` was evicted from L1 but lives in L2.
        let r = c.access(100, a, AccessKind::Load).unwrap();
        assert!(!r.hit);
        assert_eq!(r.latency, 3 + 12);
    }

    #[test]
    fn port_limits_enforced() {
        let mut c = DataCache::ideal();
        assert!(c.access(5, addr_for(0, 1), AccessKind::Load).is_ok());
        assert!(c.access(5, addr_for(1, 1), AccessKind::Load).is_ok());
        assert!(c.access(5, addr_for(2, 1), AccessKind::Load).is_err());
        assert!(c.access(5, addr_for(3, 1), AccessKind::Store).is_ok());
        assert!(c.access(5, addr_for(4, 1), AccessKind::Store).is_err());
        // Next cycle the ports are free again.
        assert!(c.access(6, addr_for(5, 1), AccessKind::Load).is_ok());
        assert_eq!(c.stats().port_conflicts, 2);
    }

    #[test]
    fn domain_events_populate_histograms() {
        // Refresh interarrival: full refresh services the line repeatedly.
        let mut c = uniform(
            Scheme::new(RefreshPolicy::Full, ReplacementPolicy::Lru),
            5_000,
        );
        c.access(0, addr_for(4, 3), AccessKind::Load).unwrap();
        c.advance(50_000);
        assert!(
            c.stats().refresh_gap_hist.iter().sum::<u64>() >= 1,
            "repeated refreshes must record interarrival gaps"
        );

        // Dead-line age: an expiry miss books the line's age.
        let mut c = uniform(Scheme::no_refresh_lru(), 5_000);
        let a = addr_for(9, 2);
        c.access(0, a, AccessKind::Load).unwrap();
        c.access(5_000, a, AccessKind::Load).unwrap();
        assert_eq!(c.stats().dead_age_hist.iter().sum::<u64>(), 1);
        // Age ≈ 5000 cycles → bucket 4 (1024-cycle buckets).
        assert_eq!(c.stats().dead_age_hist[4], 1);

        // Stall run: two same-cycle rejections then a granted access.
        let mut c = DataCache::ideal();
        c.access(5, addr_for(0, 1), AccessKind::Load).unwrap();
        c.access(5, addr_for(1, 1), AccessKind::Load).unwrap();
        assert!(c.access(5, addr_for(2, 1), AccessKind::Load).is_err());
        assert!(c.access(5, addr_for(3, 1), AccessKind::Load).is_err());
        c.access(6, addr_for(4, 1), AccessKind::Load).unwrap();
        assert_eq!(c.stats().stall_run_hist[1], 1, "one run of length 2");
    }

    #[test]
    fn retention_expiry_causes_replay_miss() {
        let mut c = uniform(Scheme::no_refresh_lru(), 5_000);
        let a = addr_for(9, 2);
        c.access(0, a, AccessKind::Load).unwrap();
        // Within quantized lifetime (4096 cycles with 1024-step counter).
        let r = c.access(4_000, a, AccessKind::Load).unwrap();
        assert!(r.hit);
        // Past it: tag matches, data gone → replay-flavored miss.
        let r = c.access(5_000, a, AccessKind::Load).unwrap();
        assert!(!r.hit);
        assert!(r.expired);
        assert_eq!(c.stats().expiry_misses, 1);
        assert!(r.latency >= 3 + 12 + 6);
    }

    #[test]
    fn store_resets_retention() {
        let mut c = uniform(Scheme::no_refresh_lru(), 5_000);
        let a = addr_for(9, 2);
        c.access(0, a, AccessKind::Load).unwrap();
        c.access(3_000, a, AccessKind::Store).unwrap();
        // 3000 + 4096 > 5000: still alive thanks to the store rewrite.
        let r = c.access(6_000, a, AccessKind::Load).unwrap();
        assert!(r.hit, "store should have restarted retention");
    }

    #[test]
    fn dirty_expiry_writes_back_and_l2_keeps_data() {
        let mut c = uniform(Scheme::no_refresh_lru(), 5_000);
        let a = addr_for(9, 2);
        c.access(0, a, AccessKind::Store).unwrap();
        // Let it expire; eager engine should write it back.
        c.advance(10_000);
        assert_eq!(c.stats().expiry_writebacks, 1);
        // Re-access: L1 miss (invalid now) but L2 hit.
        let r = c.access(10_001, a, AccessKind::Load).unwrap();
        assert!(!r.hit);
        assert_eq!(r.latency, 3 + 12);
    }

    #[test]
    fn full_refresh_keeps_lines_alive_indefinitely() {
        let mut c = uniform(
            Scheme::new(RefreshPolicy::Full, ReplacementPolicy::Lru),
            5_000,
        );
        let a = addr_for(4, 3);
        c.access(0, a, AccessKind::Load).unwrap();
        let r = c.access(50_000, a, AccessKind::Load).unwrap();
        assert!(r.hit, "full refresh must keep the line alive");
        assert!(c.stats().refreshes >= 10);
        assert_eq!(c.stats().refresh_overruns, 0);
    }

    #[test]
    fn partial_refresh_honors_threshold() {
        // Line retention 2000 cycles (ticks→1024·1), threshold 6000: the
        // line is refreshed until its age passes 6000, then expires.
        let mut c = uniform(Scheme::partial_refresh_dsp(), 2_000);
        let a = addr_for(4, 3);
        c.access(0, a, AccessKind::Load).unwrap();
        let r = c.access(4_500, a, AccessKind::Load).unwrap();
        assert!(r.hit, "partial refresh keeps it alive below threshold");
        let r = c.access(20_000, a, AccessKind::Load).unwrap();
        assert!(!r.hit, "line must expire after the threshold age");
    }

    #[test]
    fn partial_refresh_skips_long_lines() {
        // Retention 8000 ≥ threshold 6000: never refreshed, expires at
        // its own quantized lifetime (7·1024 = 7168).
        let mut c = uniform(Scheme::partial_refresh_dsp(), 8_000);
        let a = addr_for(4, 3);
        c.access(0, a, AccessKind::Load).unwrap();
        let r = c.access(7_000, a, AccessKind::Load).unwrap();
        assert!(r.hit);
        let r = c.access(7_200, a, AccessKind::Load).unwrap();
        assert!(!r.hit);
        assert_eq!(c.stats().refreshes, 0);
    }

    #[test]
    fn lru_fills_dead_ways_and_pays_for_it() {
        // Way 0 of every set dead, LRU unaware.
        let mut rets = vec![100_000u64; 1024];
        for set in 0..256 {
            rets[(set * 4) as usize] = 0;
        }
        let mut c = cache_with(Scheme::no_refresh_lru(), rets);
        let set = 7;
        // Fill all 4 ways; one lands in the dead way.
        for (i, tag) in (1..=4u64).enumerate() {
            c.access(i as u64 * 2, addr_for(set, tag), AccessKind::Load)
                .unwrap();
        }
        assert!(c.stats().dead_way_events >= 1);
        // Accessing all four again: the dead-way resident replays.
        let mut expired = 0;
        for (i, tag) in (1..=4u64).enumerate() {
            let r = c
                .access(100 + i as u64 * 2, addr_for(set, tag), AccessKind::Load)
                .unwrap();
            if r.expired {
                expired += 1;
            }
        }
        assert_eq!(expired, 1, "exactly the dead-way block is lost");
    }

    #[test]
    fn dsp_avoids_dead_ways() {
        let mut rets = vec![100_000u64; 1024];
        for set in 0..256 {
            rets[(set * 4) as usize] = 0;
        }
        let mut c = cache_with(Scheme::partial_refresh_dsp(), rets);
        let set = 7;
        // Three tags fit the three alive ways exactly.
        for (i, tag) in (1..=3u64).enumerate() {
            c.access(i as u64 * 2, addr_for(set, tag), AccessKind::Load)
                .unwrap();
        }
        assert_eq!(c.stats().dead_way_events, 0, "DSP never touches dead ways");
        let mut hits = 0;
        for (i, tag) in (1..=3u64).enumerate() {
            let r = c
                .access(100 + i as u64 * 2, addr_for(set, tag), AccessKind::Load)
                .unwrap();
            if r.hit {
                hits += 1;
            }
        }
        assert_eq!(hits, 3, "all three blocks live in the alive ways");
    }

    #[test]
    fn all_ways_dead_set_always_misses_to_l2() {
        let mut rets = vec![100_000u64; 1024];
        for way in 0..4 {
            rets[(7 * 4 + way) as usize] = 0;
        }
        let mut c = cache_with(Scheme::partial_refresh_dsp(), rets);
        let a = addr_for(7, 1);
        let r1 = c.access(0, a, AccessKind::Load).unwrap();
        assert!(!r1.hit);
        let r2 = c.access(10, a, AccessKind::Load).unwrap();
        assert!(!r2.hit, "dead set can never hit");
        assert_eq!(r2.latency, 3 + 12, "but the L2 serves it");
        assert_eq!(c.stats().all_ways_dead_misses, 2);
    }

    #[test]
    fn rsp_fifo_places_new_blocks_in_longest_retention_way() {
        // Way retentions descending by way index within each set.
        let mut rets = vec![0u64; 1024];
        for set in 0..256u32 {
            for way in 0..4u32 {
                rets[(set * 4 + way) as usize] = 40_000 - (way as u64) * 8_000;
            }
        }
        let mut c = cache_with(Scheme::rsp_fifo(), rets);
        let set = 11;
        // Fill 4 blocks; each new fill shifts previous ones down.
        for (i, tag) in (1..=4u64).enumerate() {
            c.access(i as u64 * 40, addr_for(set, tag), AccessKind::Load)
                .unwrap();
        }
        // 3 fills after the first cause shifts: 1 + 2 + 3 = 6 moves.
        assert_eq!(c.stats().line_moves, 6);
        // All four still resident (moves refresh retention).
        let mut hits = 0;
        for (i, tag) in (1..=4u64).enumerate() {
            let r = c
                .access(1_000 + i as u64 * 40, addr_for(set, tag), AccessKind::Load)
                .unwrap();
            hits += r.hit as u32;
        }
        assert_eq!(hits, 4);
    }

    #[test]
    fn rsp_fifo_evicts_shortest_retention_occupant() {
        let mut rets = vec![0u64; 1024];
        for set in 0..256u32 {
            for way in 0..4u32 {
                rets[(set * 4 + way) as usize] = 40_000 - (way as u64) * 8_000;
            }
        }
        let mut c = cache_with(Scheme::rsp_fifo(), rets);
        let set = 11;
        for (i, tag) in (1..=5u64).enumerate() {
            c.access(i as u64 * 40, addr_for(set, tag), AccessKind::Load)
                .unwrap();
        }
        // Tag 1 (the oldest) has been pushed off the bottom.
        let r = c.access(2_000, addr_for(set, 1), AccessKind::Load).unwrap();
        assert!(!r.hit);
    }

    #[test]
    fn rsp_lru_promotes_hot_block_to_top() {
        let mut rets = vec![0u64; 1024];
        for set in 0..256u32 {
            for way in 0..4u32 {
                rets[(set * 4 + way) as usize] = 40_000 - (way as u64) * 8_000;
            }
        }
        let mut c = cache_with(Scheme::rsp_lru(), rets);
        let set = 3;
        c.access(0, addr_for(set, 1), AccessKind::Load).unwrap();
        c.access(40, addr_for(set, 2), AccessKind::Load).unwrap();
        // Hitting tag 1 (now rank 1) swaps it back to the top: 2 moves.
        let before = c.stats().line_moves;
        c.access(80, addr_for(set, 1), AccessKind::Load).unwrap();
        assert_eq!(c.stats().line_moves - before, 2);
        // Hitting it again: already on top, no move.
        let before = c.stats().line_moves;
        c.access(120, addr_for(set, 1), AccessKind::Load).unwrap();
        assert_eq!(c.stats().line_moves - before, 0);
    }

    #[test]
    fn refresh_work_blocks_ports() {
        let mut c = uniform(
            Scheme::new(RefreshPolicy::Full, ReplacementPolicy::Lru),
            2_000,
        );
        // Park many lines so refresh work queues up.
        for set in 0..64u32 {
            c.access(set as u64, addr_for(set, 1), AccessKind::Load)
                .unwrap();
        }
        // Advance to when refreshes are due; the engine should consume
        // port time.
        c.advance(2_000);
        assert!(c.stats().blocked_cycles > 0);
    }

    #[test]
    fn refresh_window_blocks_its_pair() {
        // A busy window on a pair must reject demand to sets whose lines
        // map to that pair while it is open.
        let mut c = uniform(
            Scheme::new(RefreshPolicy::Full, ReplacementPolicy::Lru),
            30_000,
        );
        c.access(0, addr_for(3, 1), AccessKind::Load).unwrap();
        // The refresh for that line is due near its quantized deadline
        // (7168 − guard). Probe densely around it: at least one cycle in
        // the window must reject an access to the same set, and accesses
        // must succeed again afterwards.
        let mut saw_store_block = false;
        let mut saw_second_load_block = false;
        for t in 6_600..6_700u64 {
            // Stores are fully blocked during a window; one load proceeds
            // on the surviving read port but a second one is rejected.
            if c.access(t, addr_for(3, 2), AccessKind::Store).is_err() {
                saw_store_block = true;
                let first = c.access(t, addr_for(3, 1), AccessKind::Load);
                assert!(first.is_ok(), "one read port must survive refresh");
                if c.access(t, addr_for(3, 1), AccessKind::Load).is_err() {
                    saw_second_load_block = true;
                }
            }
        }
        assert!(saw_store_block, "no store blocking observed around the refresh");
        assert!(saw_second_load_block, "second load should lose its port");
        assert!(c.access(8_000, addr_for(3, 2), AccessKind::Store).is_ok());
    }

    #[test]
    fn global_scheme_refreshes_everything_periodically() {
        let mut c = uniform(Scheme::global(), 50_000);
        let a = addr_for(0, 5);
        c.access(0, a, AccessKind::Load).unwrap();
        // Far beyond the line's own lifetime, global passes keep it alive.
        let r = c.access(400_000, a, AccessKind::Load).unwrap();
        assert!(r.hit);
        assert!(c.stats().global_passes >= 8);
    }

    #[test]
    #[should_panic(expected = "infeasible for the global refresh scheme")]
    fn global_scheme_rejects_short_retention_chip() {
        // 2048-cycle pass cannot fit into a 3000-cycle retention.
        let _ = uniform(Scheme::global(), 3_000);
    }

    #[test]
    fn global_feasibility_check() {
        let cfg = CacheConfig::paper(Scheme::global());
        let ok = RetentionProfile::uniform_cycles(50_000, 1024);
        let bad = RetentionProfile::uniform_cycles(3_000, 1024);
        assert!(DataCache::global_scheme_feasible(&ok, &cfg));
        assert!(!DataCache::global_scheme_feasible(&bad, &cfg));
        let dead = RetentionProfile::uniform_cycles(0, 1024);
        assert!(!DataCache::global_scheme_feasible(&dead, &cfg));
    }

    #[test]
    fn no_refresh_overruns_in_steady_state() {
        // 30 K-cycle retention (usable 7168): refreshing ~512 live lines
        // at one line per 8 cycles is sustainable; no line may overrun.
        let mut c = uniform(
            Scheme::new(RefreshPolicy::Full, ReplacementPolicy::Lru),
            30_000,
        );
        for i in 0..2_000u64 {
            let set = (i % 256) as u32;
            let _ = c.access(i * 3, addr_for(set, 1 + i % 2), AccessKind::Load);
        }
        assert_eq!(c.stats().refresh_overruns, 0);
    }

    #[test]
    fn infeasible_full_refresh_overruns_gracefully() {
        // 3 K-cycle retention across 512 live lines exceeds the refresh
        // port bandwidth; the engine must degrade by invalidating (data
        // recoverable from L2), never by serving stale data.
        let mut c = uniform(
            Scheme::new(RefreshPolicy::Full, ReplacementPolicy::Lru),
            3_000,
        );
        for i in 0..2_000u64 {
            let set = (i % 256) as u32;
            let _ = c.access(i * 3, addr_for(set, 1 + i % 2), AccessKind::Load);
        }
        assert!(c.stats().refresh_overruns > 0, "backlog must be detected");
    }

    #[test]
    fn stats_accesses_add_up() {
        let mut c = DataCache::ideal();
        for i in 0..100u64 {
            let _ = c.access(i * 2, addr_for((i % 256) as u32, 1), AccessKind::Load);
            let _ = c.access(i * 2 + 1, addr_for((i % 256) as u32, 1), AccessKind::Store);
        }
        let s = c.stats();
        assert_eq!(s.accesses(), s.hits + s.misses());
    }

    #[test]
    fn rsp_lru_swap_preserves_dirty_data() {
        let mut rets = vec![0u64; 1024];
        for set in 0..256u32 {
            for way in 0..4u32 {
                rets[(set * 4 + way) as usize] = 40_000 - (way as u64) * 8_000;
            }
        }
        let mut c = cache_with(Scheme::rsp_lru(), rets);
        let set = 6;
        // Dirty a block in the top way, then hit another block so the
        // dirty one is swapped down: its data and dirtiness must survive.
        c.access(0, addr_for(set, 1), AccessKind::Store).unwrap();
        c.access(10, addr_for(set, 2), AccessKind::Load).unwrap();
        c.access(20, addr_for(set, 2), AccessKind::Load).unwrap(); // promote 2
        let r = c.access(30, addr_for(set, 1), AccessKind::Load).unwrap();
        assert!(r.hit, "dirty block must survive the swap");
        // Evict it via pressure and verify the write-back happened.
        for tag in 3..7u64 {
            c.access(40 + tag * 50, addr_for(set, tag), AccessKind::Load)
                .unwrap();
        }
        assert!(c.stats().writebacks >= 1, "dirty swap must not lose data");
    }

    #[test]
    fn global_scheme_handles_stores() {
        let mut c = uniform(Scheme::global(), 60_000);
        let a = addr_for(3, 4);
        c.access(0, a, AccessKind::Store).unwrap();
        // Long after several rotations the dirty line still hits.
        let r = c.access(500_000, a, AccessKind::Load).unwrap();
        assert!(r.hit);
        assert_eq!(c.stats().refresh_overruns, 0);
    }

    #[test]
    fn write_through_lines_never_dirty() {
        let mut cfg = CacheConfig::paper(Scheme::no_refresh_lru());
        cfg.write_policy = WritePolicy::WriteThrough;
        let mut c = DataCache::new(cfg, RetentionProfile::uniform_cycles(5_000, 1024));
        let a = addr_for(9, 2);
        c.access(0, a, AccessKind::Store).unwrap();
        c.access(10, a, AccessKind::Store).unwrap();
        // Stores propagated to the L2 immediately.
        assert!(c.stats().writebacks >= 2);
        // Let it expire: no expiry write-back is needed ("write-through
        // caches do not require any action", §4.3.1).
        c.advance(50_000);
        assert_eq!(c.stats().expiry_writebacks, 0);
        assert_eq!(c.stats().writeback_stall_refreshes, 0);
        // And the data is safe in the L2.
        let r = c.access(50_100, a, AccessKind::Load).unwrap();
        assert!(!r.hit);
        assert_eq!(r.latency, 3 + 12 + 6, "L2 hit plus the expiry replay penalty");
    }

    #[test]
    fn write_back_defers_store_traffic() {
        let mut c = uniform(Scheme::no_refresh_lru(), 500_000);
        let a = addr_for(9, 2);
        c.access(0, a, AccessKind::Store).unwrap();
        c.access(10, a, AccessKind::Store).unwrap();
        assert_eq!(c.stats().writebacks, 0, "no traffic until eviction");
    }

    #[test]
    #[should_panic(expected = "time must be monotone")]
    fn time_cannot_go_backwards() {
        let mut c = DataCache::ideal();
        c.advance(100);
        c.advance(50);
    }

    #[test]
    fn audit_passes_across_schemes_and_dead_ways() {
        let mut rets = vec![40_000u64; 1024];
        for set in 0..256 {
            rets[(set * 4) as usize] = 0; // way 0 of every set dead
        }
        for scheme in [
            Scheme::no_refresh_lru(),
            Scheme::partial_refresh_dsp(),
            Scheme::rsp_fifo(),
            Scheme::rsp_lru(),
            Scheme::new(RefreshPolicy::Full, ReplacementPolicy::Lru),
        ] {
            let mut c = cache_with(scheme, rets.clone());
            c.audit().unwrap();
            for i in 0..600u64 {
                let set = (i % 64) as u32;
                let kind = if i % 3 == 0 {
                    AccessKind::Store
                } else {
                    AccessKind::Load
                };
                let _ = c.access(i * 5, addr_for(set, 1 + i % 5), kind);
            }
            c.audit().unwrap_or_else(|e| panic!("{scheme}: {e}"));
        }
    }

    #[test]
    fn stats_export_lands_in_registry() {
        let mut c = uniform(Scheme::no_refresh_lru(), 5_000);
        let a = addr_for(9, 2);
        c.access(0, a, AccessKind::Load).unwrap();
        c.access(10, a, AccessKind::Load).unwrap();
        let mut m = obs::MetricsRegistry::new();
        c.stats().export(&mut m, "cache");
        assert_eq!(m.counter("cache.loads"), Some(2));
        assert_eq!(m.counter("cache.hits"), Some(1));
        assert!((m.gauge("cache.miss_rate").unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(m.get_histogram("cache.hit_age_cycles").unwrap().count(), 1);
    }
}
