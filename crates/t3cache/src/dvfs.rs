//! The (cell technology × DVFS operating point) design-space sweep.
//!
//! Each grid point fabricates a Monte-Carlo chip population in one
//! [`CellTechnology`] at one [`OperatingPoint`], converts retention into
//! cycles *at that point's clock*, and summarizes what the architecture
//! cares about: yield, dead lines, retention, timing feasibility, the
//! median chip's normalized performance, and the static/refresh energy
//! picture. The frontier stage then marks the Pareto-optimal points on the
//! (throughput, power) plane — the retention/yield/IPC/energy trade
//! surface the fixed-corner pipeline could never see.

use crate::chip::{ChipGrade, ChipPopulation};
use crate::evaluate::{EvalConfig, Evaluator};
use cachesim::Scheme;
use vlsi::array::ArrayLayout;
use vlsi::celltech::CellTechKind;
use vlsi::leakage::with_periphery;
use vlsi::tech::{OperatingPoint, TechNode};
use vlsi::units::{Energy, Power, Time};
use vlsi::variation::VariationParams;

/// A population is counted toward yield only if its dead-line fraction
/// under the chip-sized counters stays below this bound (a cache that has
/// lost half its lines is not shippable at any refresh scheme).
pub const YIELD_DEAD_LINE_LIMIT: f64 = 0.5;

/// One cell of the sweep grid.
#[derive(Debug, Clone)]
pub struct DvfsPointConfig {
    /// Technology node.
    pub node: TechNode,
    /// Cell technology to fabricate.
    pub kind: CellTechKind,
    /// DVFS operating point.
    pub op: OperatingPoint,
    /// Variation scenario.
    pub params: VariationParams,
    /// Monte-Carlo population size.
    pub chips: u32,
    /// Base RNG seed (shared across the grid so comparisons are paired).
    pub seed: u64,
    /// Benchmark-suite configuration for the median-chip evaluation.
    pub eval: EvalConfig,
}

/// The architectural summary of one `(technology, operating point)` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct DvfsPointResult {
    /// Cell technology.
    pub kind: CellTechKind,
    /// Operating point.
    pub op: OperatingPoint,
    /// Fraction of chips with a usable cache (dead lines below
    /// [`YIELD_DEAD_LINE_LIMIT`] under their own counter sizing).
    pub yield_fraction: f64,
    /// Mean dead-line fraction across the population.
    pub mean_dead_fraction: f64,
    /// Median whole-cache retention (worst line of the median chip).
    pub median_cache_retention: Time,
    /// Deviation-free array access time at the operating point.
    pub access_time: Time,
    /// Whether that access fits the operating point's clock period.
    pub timing_feasible: bool,
    /// Median chip's suite performance normalized against the ideal-6T
    /// baseline *at the same operating point*.
    pub normalized_perf: f64,
    /// Median chip's harmonic-mean BIPS at the operating point's clock.
    pub bips: f64,
    /// Whole-array static power (nominal cell × array + periphery).
    pub leakage: Power,
    /// Per-line refresh / scrub / replay energy.
    pub refresh_energy_per_line: Energy,
    /// Whether the technology's lines decay and need refresh at all.
    pub needs_refresh: bool,
}

impl DvfsPointResult {
    /// The stable identifier of this grid cell (`<tech>.<op-slug>`), safe
    /// for stage ids and file names.
    pub fn slug(&self) -> String {
        format!("{}.{}", self.kind.slug(), self.op.slug())
    }

    /// A throughput-per-watt figure of merit (BIPS over leakage watts) —
    /// the y/x collapse used to rank frontier points. Zero when the point
    /// is timing-infeasible or yields nothing.
    pub fn bips_per_watt(&self) -> f64 {
        if !self.timing_feasible || self.yield_fraction == 0.0 {
            return 0.0;
        }
        self.bips / self.leakage.value().max(1e-12)
    }
}

/// Evaluates one grid cell: fabricate the population, size counters per
/// chip, and run the median chip's benchmark suite at the operating point.
pub fn evaluate_point(cfg: &DvfsPointConfig) -> DvfsPointResult {
    let _span = obs::trace::span_with("t3cache", || {
        format!("dvfs.point:{}.{}", cfg.kind.slug(), cfg.op.slug())
    });
    let tech = cfg.kind.build(cfg.node, cfg.op);
    let pop = ChipPopulation::generate_with_tech(
        cfg.node,
        cfg.params,
        cfg.chips,
        cfg.seed,
        tech.as_ref(),
    );

    let mut dead_sum = 0.0;
    let mut yielding = 0u32;
    for chip in pop.chips() {
        let dead = chip.dead_fraction();
        dead_sum += dead;
        if dead < YIELD_DEAD_LINE_LIMIT {
            yielding += 1;
        }
    }
    let n = pop.len().max(1) as f64;

    let median = pop.select(ChipGrade::Median);
    let access = tech.access_time();
    let timing_feasible = access <= cfg.op.clock_period();

    // Suite evaluation at the operating point: ideal 6T and the median
    // chip's scheme run on the same clock, so the normalization isolates
    // the retention cost from the frequency choice.
    let mut eval_cfg = cfg.eval.clone();
    eval_cfg.node = cfg.node;
    eval_cfg.operating_point = Some(cfg.op);
    let eval = Evaluator::new(eval_cfg);
    let ideal = eval.run_ideal(4);
    let suite = eval.run_scheme(median.retention_profile(), Scheme::rsp_fifo(), 4);

    let layout = ArrayLayout::PAPER_L1D;
    let cell_total = tech.cell_leakage() * layout.total_cells() as f64;

    DvfsPointResult {
        kind: cfg.kind,
        op: cfg.op,
        yield_fraction: yielding as f64 / n,
        mean_dead_fraction: dead_sum / n,
        median_cache_retention: median.cache_retention(),
        access_time: access,
        timing_feasible,
        normalized_perf: suite.normalized_performance(&ideal, 1.0),
        bips: suite.hm_bips(1.0),
        leakage: with_periphery(cfg.node, cell_total),
        refresh_energy_per_line: tech.refresh_energy_per_line(),
        needs_refresh: tech.needs_refresh(),
    }
}

/// Marks the Pareto frontier of the grid on the (BIPS, leakage) plane:
/// a point survives unless some other point has at least its throughput
/// for strictly less power (or more throughput for at most the same
/// power). Timing-infeasible and zero-yield points never make the
/// frontier.
pub fn pareto_frontier(points: &[DvfsPointResult]) -> Vec<bool> {
    points
        .iter()
        .map(|p| {
            if !p.timing_feasible || p.yield_fraction == 0.0 {
                return false;
            }
            !points.iter().any(|q| {
                (q.timing_feasible && q.yield_fraction > 0.0)
                    && ((q.bips >= p.bips && q.leakage.value() < p.leakage.value())
                        || (q.bips > p.bips && q.leakage.value() <= p.leakage.value()))
            })
        })
        .collect()
}

/// Renders the grid as the frontier stage's fixed-width report: one row
/// per `(technology, operating point)`, Pareto points starred.
pub fn render_frontier(points: &[DvfsPointResult]) -> String {
    let frontier = pareto_frontier(points);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:>7} {:>7} {:>10} {:>9} {:>6} {:>7} {:>8} {:>9} {:>3}\n",
        "tech.point", "yield", "dead%", "ret(ns)", "acc(ps)", "fit", "perf", "bips", "leak(mW)", "par"
    ));
    for (p, &on_frontier) in points.iter().zip(&frontier) {
        out.push_str(&format!(
            "{:<22} {:>6.1}% {:>6.2}% {:>10.1} {:>9.1} {:>6} {:>7.3} {:>8.3} {:>9.2} {:>3}\n",
            p.slug(),
            100.0 * p.yield_fraction,
            100.0 * p.mean_dead_fraction,
            p.median_cache_retention.ns(),
            p.access_time.ps(),
            if p.timing_feasible { "yes" } else { "no" },
            p.normalized_perf,
            p.bips,
            p.leakage.mw(),
            if on_frontier { "*" } else { "" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi::units::{Frequency, Voltage};
    use vlsi::variation::VariationCorner;
    use workloads::SpecBenchmark;

    fn tiny_eval() -> EvalConfig {
        EvalConfig {
            instructions: 20_000,
            warmup: 10_000,
            benchmarks: vec![SpecBenchmark::Gzip],
            ..EvalConfig::default()
        }
    }

    fn point(kind: CellTechKind, op: OperatingPoint) -> DvfsPointConfig {
        DvfsPointConfig {
            node: TechNode::N32,
            kind,
            op,
            params: VariationCorner::Typical.params(),
            chips: 3,
            seed: 41,
            eval: tiny_eval(),
        }
    }

    #[test]
    fn nominal_3t1d_point_is_healthy() {
        let r = evaluate_point(&point(
            CellTechKind::T3t1d,
            OperatingPoint::nominal(TechNode::N32),
        ));
        assert_eq!(r.yield_fraction, 1.0);
        assert!(r.timing_feasible);
        assert!(r.normalized_perf > 0.9, "perf {}", r.normalized_perf);
        assert!(r.bips > 1.0);
        assert!(r.needs_refresh);
        assert_eq!(r.slug(), "3t1d.v1000f4300t80");
    }

    #[test]
    fn undervolted_overclocked_point_fails_timing() {
        // 0.7 V but still asking for the nominal 4.3 GHz clock: the drive
        // loss pushes the access past the period.
        let op = OperatingPoint::nominal(TechNode::N32).with_vdd(Voltage::new(0.7));
        let r = evaluate_point(&point(CellTechKind::T3t1d, op));
        assert!(!r.timing_feasible, "access {} ps", r.access_time.ps());
        assert_eq!(r.bips_per_watt(), 0.0);
    }

    #[test]
    fn frontier_prefers_dominating_points() {
        let nominal = evaluate_point(&point(
            CellTechKind::T3t1d,
            OperatingPoint::nominal(TechNode::N32),
        ));
        // Same voltage, slower clock: strictly less throughput at the same
        // leakage — dominated.
        let slow_op = OperatingPoint::nominal(TechNode::N32).with_freq(Frequency::from_ghz(2.0));
        let slow = evaluate_point(&point(CellTechKind::T3t1d, slow_op));
        let frontier = pareto_frontier(&[nominal.clone(), slow.clone()]);
        assert!(frontier[0], "nominal must survive");
        assert!(!frontier[1], "dominated point must not");
        let text = render_frontier(&[nominal, slow]);
        assert!(text.contains("3t1d.v1000f4300t80"));
        assert!(text.contains('*'));
    }

    #[test]
    fn lv6t_yield_collapses_at_low_voltage() {
        let nominal = evaluate_point(&point(
            CellTechKind::Lv6t,
            OperatingPoint::nominal(TechNode::N32),
        ));
        let low = evaluate_point(&point(
            CellTechKind::Lv6t,
            OperatingPoint::nominal(TechNode::N32)
                .with_vdd(Voltage::new(0.55))
                .with_freq(Frequency::from_ghz(1.0)),
        ));
        assert!(low.mean_dead_fraction >= nominal.mean_dead_fraction);
        assert!(!nominal.needs_refresh);
    }
}
