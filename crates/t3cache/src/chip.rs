//! Architecture-facing chip models and Monte-Carlo populations.
//!
//! [`ChipModel`] wraps a [`vlsi::Chip`] sample and exposes exactly what
//! the cache architecture consumes: the per-line [`RetentionProfile`] at
//! the node's clock, dead-line statistics, the 6T frequency multipliers,
//! and leakage power. [`ChipPopulation`] generates the paper's 100-chip
//! Monte-Carlo batches and selects the §4.3 *good/median/bad* exemplars.

use cachesim::{CounterSpec, RetentionProfile};
use vlsi::celltech::CellTechnology;
use vlsi::cell6t::CellSize;
use vlsi::montecarlo::{Chip, ChipFactory};
use vlsi::stats::median;
use vlsi::tech::TechNode;
use vlsi::units::{Power, Time};
use vlsi::variation::VariationParams;

/// One fabricated chip, as the cache architecture sees it.
#[derive(Debug, Clone)]
pub struct ChipModel {
    node: TechNode,
    index: u32,
    retention_times: Vec<Time>,
    profile: RetentionProfile,
    freq_mult_1x: f64,
    freq_mult_2x: f64,
    leakage_6t_1x: Power,
    leakage_3t1d: Power,
}

impl ChipModel {
    /// Builds the architecture-facing model of one chip sample.
    pub fn new(chip: &Chip) -> Self {
        let node = chip.node();
        let retention_times = chip.line_retentions();
        let profile = RetentionProfile::from_times(&retention_times, node.chip_frequency());
        Self {
            node,
            index: chip.index(),
            profile,
            freq_mult_1x: chip.frequency_multiplier_6t(CellSize::X1),
            freq_mult_2x: chip.frequency_multiplier_6t(CellSize::X2),
            leakage_6t_1x: chip.leakage_6t(CellSize::X1),
            leakage_3t1d: chip.leakage_3t1d(),
            retention_times,
        }
    }

    /// Builds the model of the same chip sample fabricated in an arbitrary
    /// cell technology at its operating point: the technology's retention
    /// solve over the same deviation planes, and the retention profile
    /// converted at the operating point's clock. For the 3T1D technology
    /// at the nominal point this is bit-identical to [`ChipModel::new`].
    pub fn new_with_tech(chip: &Chip, tech: &dyn CellTechnology) -> Self {
        let node = chip.node();
        let retention_times = chip.line_retentions_tech(tech);
        let profile =
            RetentionProfile::from_times_at(&retention_times, tech.operating_point());
        Self {
            node,
            index: chip.index(),
            profile,
            freq_mult_1x: chip.frequency_multiplier_6t(CellSize::X1),
            freq_mult_2x: chip.frequency_multiplier_6t(CellSize::X2),
            leakage_6t_1x: chip.leakage_6t(CellSize::X1),
            leakage_3t1d: chip.leakage_3t1d(),
            retention_times,
        }
    }

    /// The technology node.
    pub fn node(&self) -> TechNode {
        self.node
    }

    /// The chip's index within its population.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// Per-line physical retention times.
    pub fn retention_times(&self) -> &[Time] {
        &self.retention_times
    }

    /// The per-line retention profile in core cycles.
    pub fn retention_profile(&self) -> &RetentionProfile {
        &self.profile
    }

    /// The whole-cache retention (worst line) — what the global scheme
    /// must refresh within.
    pub fn cache_retention(&self) -> Time {
        self.retention_times
            .iter()
            .fold(Time::from_us(f64::INFINITY), |a, &b| a.min(b))
    }

    /// Mean line retention — a stable whole-chip quality signal used for
    /// good/median/bad ranking.
    pub fn mean_line_retention(&self) -> Time {
        let sum: f64 = self.retention_times.iter().map(|t| t.value()).sum();
        Time::new(sum / self.retention_times.len() as f64)
    }

    /// Fraction of lines dead under a counter spec.
    pub fn dead_line_fraction(&self, counter: &CounterSpec) -> f64 {
        self.profile.dead_fraction(counter)
    }

    /// The chip-sized counter spec (§4.3.1's per-chip `N` selection).
    pub fn counter_spec(&self) -> CounterSpec {
        CounterSpec::for_profile(&self.profile)
    }

    /// Fraction of lines dead under the chip's own counter sizing.
    pub fn dead_fraction(&self) -> f64 {
        self.profile.dead_fraction(&self.counter_spec())
    }

    /// Chip frequency multiplier if built with a 6T cache of `size`.
    pub fn frequency_multiplier_6t(&self, size: CellSize) -> f64 {
        match size {
            CellSize::X1 => self.freq_mult_1x,
            CellSize::X2 => self.freq_mult_2x,
        }
    }

    /// Cache leakage power with 1X 6T cells.
    pub fn leakage_6t(&self) -> Power {
        self.leakage_6t_1x
    }

    /// Cache leakage power with 3T1D cells.
    pub fn leakage_3t1d(&self) -> Power {
        self.leakage_3t1d
    }
}

/// The §4.3 chip exemplars.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChipGrade {
    /// Longest-retention process corner.
    Good,
    /// The median chip.
    Median,
    /// Shortest-retention corner (most dead lines).
    Bad,
}

impl std::fmt::Display for ChipGrade {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChipGrade::Good => f.write_str("good"),
            ChipGrade::Median => f.write_str("median"),
            ChipGrade::Bad => f.write_str("bad"),
        }
    }
}

/// A deterministic Monte-Carlo population of chips.
#[derive(Debug, Clone)]
pub struct ChipPopulation {
    node: TechNode,
    chips: Vec<ChipModel>,
}

impl ChipPopulation {
    /// Generates `count` chips for a node and variation scenario, fanning
    /// the per-chip Monte-Carlo sampling across the campaign worker pool.
    ///
    /// Chip `i`'s RNG streams are seeded from `(seed, i)` alone, so the
    /// population is identical whatever the worker count (pinned by the
    /// campaign determinism tests).
    pub fn generate(node: TechNode, params: VariationParams, count: u32, seed: u64) -> Self {
        Self::generate_with_workers(node, params, count, seed, crate::campaign::worker_count())
    }

    /// [`ChipPopulation::generate`] with an explicit worker count.
    pub fn generate_with_workers(
        node: TechNode,
        params: VariationParams,
        count: u32,
        seed: u64,
        workers: usize,
    ) -> Self {
        let factory = ChipFactory::new(node, params, seed);
        let (chips, _report) = crate::campaign::map_indexed_with_workers(
            count as usize,
            workers,
            |i| ChipModel::new(&factory.chip(i as u32)),
        );
        Self { node, chips }
    }

    /// [`ChipPopulation::generate`] for an arbitrary cell technology: the
    /// same deterministic per-chip sampling with the technology's retention
    /// solve. Populations across technologies and operating points share
    /// the same deviation draws per `(seed, i)`, so sweep comparisons are
    /// paired, not resampled.
    pub fn generate_with_tech(
        node: TechNode,
        params: VariationParams,
        count: u32,
        seed: u64,
        tech: &dyn CellTechnology,
    ) -> Self {
        let factory = ChipFactory::new(node, params, seed);
        let (chips, _report) = crate::campaign::map_indexed_with_workers(
            count as usize,
            crate::campaign::worker_count(),
            |i| ChipModel::new_with_tech(&factory.chip(i as u32), tech),
        );
        Self { node, chips }
    }

    /// The technology node.
    pub fn node(&self) -> TechNode {
        self.node
    }

    /// All chips.
    pub fn chips(&self) -> &[ChipModel] {
        &self.chips
    }

    /// Number of chips.
    pub fn len(&self) -> usize {
        self.chips.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.chips.is_empty()
    }

    /// Selects a chip by grade, ranking by mean line retention (the §4.3
    /// "process corners that result in longest/shortest retention time").
    ///
    /// # Panics
    ///
    /// Panics if the population is empty.
    pub fn select(&self, grade: ChipGrade) -> &ChipModel {
        assert!(!self.chips.is_empty(), "empty population");
        let mut order: Vec<usize> = (0..self.chips.len()).collect();
        order.sort_by(|&a, &b| {
            self.chips[a]
                .mean_line_retention()
                .partial_cmp(&self.chips[b].mean_line_retention())
                .expect("retention times are finite")
        });
        let idx = match grade {
            ChipGrade::Bad => order[0],
            ChipGrade::Median => order[order.len() / 2],
            ChipGrade::Good => order[order.len() - 1],
        };
        &self.chips[idx]
    }

    /// Fraction of chips that must be discarded under the global scheme
    /// (at least one line with effectively zero usable retention, or a
    /// cache retention too short to fit a refresh pass — §4.3 reports
    /// ≈80 % under severe variation).
    pub fn global_scheme_discard_fraction(&self, cfg: &cachesim::CacheConfig) -> f64 {
        if self.chips.is_empty() {
            return 0.0;
        }
        let discarded = self
            .chips
            .iter()
            .filter(|c| !cachesim::DataCache::global_scheme_feasible(c.retention_profile(), cfg))
            .count();
        discarded as f64 / self.chips.len() as f64
    }

    /// Median cache retention across the population.
    ///
    /// # Panics
    ///
    /// Panics if the population is empty.
    pub fn median_cache_retention(&self) -> Time {
        let vals: Vec<f64> = self.chips.iter().map(|c| c.cache_retention().ns()).collect();
        Time::from_ns(median(&vals))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi::variation::VariationCorner;

    fn small_pop(corner: VariationCorner) -> ChipPopulation {
        ChipPopulation::generate(TechNode::N32, corner.params(), 12, 99)
    }

    #[test]
    fn population_is_deterministic() {
        let a = small_pop(VariationCorner::Typical);
        let b = small_pop(VariationCorner::Typical);
        assert_eq!(a.len(), 12);
        for (x, y) in a.chips().iter().zip(b.chips()) {
            assert_eq!(x.retention_times(), y.retention_times());
        }
    }

    #[test]
    fn tech_population_at_nominal_matches_baseline() {
        use vlsi::celltech::CellTechKind;
        use vlsi::tech::OperatingPoint;
        let base = small_pop(VariationCorner::Typical);
        let tech =
            CellTechKind::T3t1d.build(TechNode::N32, OperatingPoint::nominal(TechNode::N32));
        let pop = ChipPopulation::generate_with_tech(
            TechNode::N32,
            VariationCorner::Typical.params(),
            12,
            99,
            tech.as_ref(),
        );
        for (a, b) in base.chips().iter().zip(pop.chips()) {
            assert_eq!(a.retention_times(), b.retention_times());
            assert_eq!(a.retention_profile(), b.retention_profile());
        }
    }

    #[test]
    fn grades_are_ordered() {
        let pop = small_pop(VariationCorner::Severe);
        let good = pop.select(ChipGrade::Good);
        let median = pop.select(ChipGrade::Median);
        let bad = pop.select(ChipGrade::Bad);
        assert!(good.mean_line_retention() >= median.mean_line_retention());
        assert!(median.mean_line_retention() >= bad.mean_line_retention());
        // Dead lines follow the same ordering (more dead on bad chips).
        let spec = CounterSpec::default();
        assert!(bad.dead_line_fraction(&spec) >= median.dead_line_fraction(&spec));
    }

    #[test]
    fn severe_bad_chip_has_many_dead_lines() {
        let pop = small_pop(VariationCorner::Severe);
        let bad = pop.select(ChipGrade::Bad);
        let frac = bad.dead_line_fraction(&CounterSpec::default());
        assert!(frac > 0.05, "bad chip dead fraction {frac}");
        assert!(frac < 0.6, "bad chip dead fraction {frac}");
    }

    #[test]
    fn typical_chips_mostly_survive_global_scheme() {
        let pop = small_pop(VariationCorner::Typical);
        let cfg = cachesim::CacheConfig::paper(cachesim::Scheme::global());
        let frac = pop.global_scheme_discard_fraction(&cfg);
        assert!(frac < 0.35, "typical discard fraction {frac}");
    }

    #[test]
    fn severe_chips_mostly_discarded_under_global_scheme() {
        let pop = small_pop(VariationCorner::Severe);
        let cfg = cachesim::CacheConfig::paper(cachesim::Scheme::global());
        let frac = pop.global_scheme_discard_fraction(&cfg);
        assert!(frac > 0.6, "severe discard fraction {frac}");
    }

    #[test]
    fn profile_matches_retention_times() {
        let pop = small_pop(VariationCorner::Typical);
        let chip = &pop.chips()[0];
        let clock = TechNode::N32.chip_frequency();
        for (i, t) in chip.retention_times().iter().enumerate().take(20) {
            let expect = (t.value() * clock.value()) as u64;
            assert_eq!(chip.retention_profile().cycles(i as u32), expect);
        }
    }

    #[test]
    fn frequency_multipliers_sane() {
        let pop = small_pop(VariationCorner::Typical);
        for c in pop.chips() {
            let f1 = c.frequency_multiplier_6t(CellSize::X1);
            let f2 = c.frequency_multiplier_6t(CellSize::X2);
            assert!(f1 > 0.6 && f1 <= 1.05);
            assert!(f2 > 0.8 && f2 <= 1.05);
            assert!(f2 >= f1 * 0.95);
        }
    }

    #[test]
    fn leakage_3t1d_below_6t() {
        let pop = small_pop(VariationCorner::Typical);
        for c in pop.chips() {
            assert!(c.leakage_3t1d().value() < c.leakage_6t().value());
        }
    }
}
