//! §2.1's yield argument, quantified: can redundancy or ECC rescue an
//! unstable 6T cache?
//!
//! The paper dismisses 6T rescue mechanisms in one line — a 0.4 % bit-flip
//! rate makes a 256-bit line fail with probability 64 %, so "line-level
//! redundancy is straightforward to implement, but is ineffective". This
//! module computes the actual manufacturing yield of a 6T cache under each
//! rescue mechanism (none, spare lines, SECDED ECC, both), making the
//! comparison against the 3T1D design's architectural tolerance explicit.

use vlsi::cell6t::{bit_flip_probability, line_failure_probability, CellSize};
use vlsi::math::binomial_tail_ge;
use vlsi::tech::TechNode;
use vlsi::variation::VariationParams;

/// The rescue mechanism applied to an unstable 6T cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RescueMechanism {
    /// No rescue: any unstable bit kills the cache.
    None,
    /// `spares` spare lines remap failing lines.
    SpareLines {
        /// Number of spare lines available.
        spares: u32,
    },
    /// SECDED ECC per 64-bit word: a word survives one unstable bit.
    Secded,
    /// SECDED plus spare lines.
    SecdedPlusSpares {
        /// Number of spare lines available.
        spares: u32,
    },
}

impl std::fmt::Display for RescueMechanism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RescueMechanism::None => write!(f, "none"),
            RescueMechanism::SpareLines { spares } => write!(f, "{spares} spare lines"),
            RescueMechanism::Secded => write!(f, "SECDED/64b"),
            RescueMechanism::SecdedPlusSpares { spares } => {
                write!(f, "SECDED + {spares} spares")
            }
        }
    }
}

/// Data bits per ECC word (SECDED over 64 data + 8 check bits).
const ECC_WORD_DATA_BITS: u32 = 64;
const ECC_WORD_TOTAL_BITS: u32 = 72;

/// Probability that one SECDED-protected word is uncorrectable (≥ 2
/// unstable bits among its 72 stored bits).
pub fn secded_word_failure(bit_flip: f64) -> f64 {
    // 1 - P(0 flips) - P(1 flip)
    let n = ECC_WORD_TOTAL_BITS as u64;
    binomial_tail_ge(n, 2, bit_flip)
}

/// Probability that one line fails under a rescue mechanism's *line-level*
/// protection (ECC folds into the per-line failure probability; spares act
/// across lines).
pub fn line_failure_under(mechanism: RescueMechanism, bit_flip: f64, bits_per_line: u32) -> f64 {
    match mechanism {
        RescueMechanism::None | RescueMechanism::SpareLines { .. } => {
            line_failure_probability(bit_flip, bits_per_line)
        }
        RescueMechanism::Secded | RescueMechanism::SecdedPlusSpares { .. } => {
            let words = bits_per_line / ECC_WORD_DATA_BITS;
            let pw = secded_word_failure(bit_flip);
            1.0 - (1.0 - pw).powi(words as i32)
        }
    }
}

/// Manufacturing yield of a 6T cache of `lines` lines of `bits_per_line`
/// bits under a rescue mechanism, at a bit-flip probability.
pub fn cache_yield(
    mechanism: RescueMechanism,
    bit_flip: f64,
    lines: u32,
    bits_per_line: u32,
) -> f64 {
    let p_line = line_failure_under(mechanism, bit_flip, bits_per_line);
    let spares = match mechanism {
        RescueMechanism::SpareLines { spares }
        | RescueMechanism::SecdedPlusSpares { spares } => spares,
        _ => 0,
    };
    // The cache ships if at most `spares` lines fail.
    1.0 - binomial_tail_ge(lines as u64, spares as u64 + 1, p_line)
}

/// One row of the rescue-mechanism comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RescueReport {
    /// Technology node.
    pub node: TechNode,
    /// Per-bit flip probability under the given variation.
    pub bit_flip: f64,
    /// Yield with no rescue.
    pub yield_none: f64,
    /// Yield with 16 spare lines.
    pub yield_spares: f64,
    /// Yield with SECDED.
    pub yield_secded: f64,
    /// Yield with SECDED + 16 spare lines.
    pub yield_both: f64,
}

/// Computes the §2.1 rescue comparison for a node and variation scenario
/// (the paper's 64 KB / 512-bit-line cache; 16 spare lines where used).
pub fn rescue_report(node: TechNode, params: &VariationParams) -> RescueReport {
    let p = bit_flip_probability(node, CellSize::X1, params);
    let (lines, bits) = (1024, 512);
    RescueReport {
        node,
        bit_flip: p,
        yield_none: cache_yield(RescueMechanism::None, p, lines, bits),
        yield_spares: cache_yield(RescueMechanism::SpareLines { spares: 16 }, p, lines, bits),
        yield_secded: cache_yield(RescueMechanism::Secded, p, lines, bits),
        yield_both: cache_yield(
            RescueMechanism::SecdedPlusSpares { spares: 16 },
            p,
            lines,
            bits,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi::variation::VariationCorner;

    #[test]
    fn paper_example_line_failure() {
        // §2.1: p = 0.4%, 256-bit line → 64% failure.
        let p = line_failure_under(RescueMechanism::None, 0.004, 256);
        assert!((p - 0.64).abs() < 0.015, "p={p}");
    }

    #[test]
    fn spares_cannot_rescue_at_paper_flip_rates() {
        // With 64% of lines failing, even hundreds of spares are useless.
        let y = cache_yield(RescueMechanism::SpareLines { spares: 128 }, 0.004, 1024, 256);
        assert!(y < 1e-6, "yield {y}");
    }

    #[test]
    fn secded_helps_but_not_enough_at_32nm() {
        // At 0.4% per bit, a 72-bit word has ≥2 flips with probability
        // ≈3.2% → a 512-bit line still fails with ≈23%: ECC alone cannot
        // ship the cache either.
        let pw = secded_word_failure(0.004);
        assert!(pw > 0.02 && pw < 0.05, "word failure {pw}");
        let y = cache_yield(RescueMechanism::Secded, 0.004, 1024, 512);
        assert!(y < 1e-6, "yield {y}");
    }

    #[test]
    fn rescue_works_at_older_nodes() {
        // 65 nm typical: flip rates are negligible, every mechanism yields.
        let r = rescue_report(TechNode::N65, &VariationCorner::Typical.params());
        assert!(r.yield_secded > 0.999);
        assert!(r.yield_both > 0.999);
        assert!(r.yield_none > 0.8);
    }

    #[test]
    fn yield_ordering_is_monotone_in_mechanism_strength() {
        for node in TechNode::ALL {
            let r = rescue_report(node, &VariationCorner::Typical.params());
            assert!(r.yield_spares >= r.yield_none - 1e-12);
            assert!(r.yield_secded >= r.yield_none - 1e-12);
            assert!(r.yield_both >= r.yield_secded - 1e-12);
            assert!(r.yield_both >= r.yield_spares - 1e-12);
        }
    }

    #[test]
    fn the_32nm_cliff_is_real() {
        // The §2.1 argument: at 32 nm typical variation no classical
        // rescue mechanism ships the 6T cache.
        let r = rescue_report(TechNode::N32, &VariationCorner::Typical.params());
        assert!(r.bit_flip > 0.003);
        assert!(r.yield_both < 0.05, "yield_both {}", r.yield_both);
    }

    #[test]
    fn yields_are_probabilities() {
        for node in TechNode::ALL {
            for corner in [VariationCorner::Typical, VariationCorner::Severe] {
                let r = rescue_report(node, &corner.params());
                for y in [r.yield_none, r.yield_spares, r.yield_secded, r.yield_both] {
                    assert!((0.0..=1.0).contains(&y));
                }
            }
        }
    }
}
