//! Process-variation-tolerant 3T1D cache architectures — the paper's
//! primary contribution (MICRO 2007 reproduction).
//!
//! This crate ties the workspace together: Monte-Carlo chip samples from
//! [`vlsi`] become per-line retention profiles for the [`cachesim`] L1D,
//! which is driven by the [`uarch`] out-of-order core over [`workloads`]
//! benchmark streams. On top of that substrate it implements the paper's
//! evaluation machinery:
//!
//! * [`campaign`] — the parallel Monte-Carlo campaign engine fanning
//!   independent `(chip, scheme)` work units across a worker pool with
//!   serial-identical output;
//! * [`chip`] — architecture-facing chip models, populations, and the
//!   good/median/bad exemplar selection of §4.3;
//! * [`evaluate`] — scheme × chip × benchmark-suite evaluation with the
//!   paper's normalization against an ideal 6T design;
//! * [`dvfs`] — the (cell technology × operating point) sweep and its
//!   Pareto frontier on the throughput/power plane;
//! * [`sensitivity`] — the §5 µ–σ/µ retention sweep (Fig. 12);
//! * [`table3`] — the per-node design-comparison table.
//!
//! # Quick start
//!
//! Evaluate the paper's best scheme (RSP-FIFO) on a severely varied chip:
//!
//! ```no_run
//! use t3cache::chip::{ChipGrade, ChipPopulation};
//! use t3cache::evaluate::{EvalConfig, Evaluator};
//! use cachesim::Scheme;
//! use vlsi::{TechNode, VariationCorner};
//!
//! let pop = ChipPopulation::generate(
//!     TechNode::N32, VariationCorner::Severe.params(), 100, 42);
//! let eval = Evaluator::new(EvalConfig::default());
//! let ideal = eval.run_ideal(4);
//! let (perf, power) =
//!     eval.evaluate_chip(pop.select(ChipGrade::Bad), Scheme::rsp_fifo(), &ideal);
//! println!("bad chip under RSP-FIFO: perf {perf:.3}, dyn power {power:.2}x");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod chip;
pub mod dvfs;
pub mod evaluate;
pub mod rescue;
pub mod sensitivity;
pub mod table3;
pub mod wordlevel;

pub use campaign::{evaluate_grid, map_indexed, CampaignReport, CampaignResult};
pub use chip::{ChipGrade, ChipModel, ChipPopulation};
pub use dvfs::{evaluate_point, pareto_frontier, DvfsPointConfig, DvfsPointResult};
pub use rescue::{cache_yield, rescue_report, RescueMechanism, RescueReport};
pub use wordlevel::{line_level_demand, word_level_demand, word_vs_line, RefreshDemand};
pub use evaluate::{BenchRun, EvalConfig, Evaluator, SuiteResult, UnitEval};
pub use sensitivity::{design_point, synthetic_profile, SensitivityPoint, SensitivitySweep};
pub use table3::{cache_power_saving, table3_rows, Design, Table3Row};
