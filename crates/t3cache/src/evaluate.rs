//! End-to-end scheme evaluation: chip × scheme × benchmark suite → IPC
//! and dynamic power, normalized against the ideal-6T baseline.
//!
//! This is the measurement loop behind Figs. 6b, 9, 10 and 11: each
//! retention scheme is run over the eight SPEC2000-like workloads on the
//! Table 2 machine, and performance/power are reported relative to an
//! ideal (variation-free, infinite-retention) 6T cache on the same
//! machine, exactly as the paper normalizes.

use crate::chip::ChipModel;
use cachesim::{CacheConfig, CacheStats, DataCache, Geometry, RetentionProfile, Scheme};
use uarch::sim::{simulate_warmed_with, SimResult};
use uarch::MachineConfig;
use vlsi::power::MemKind;
use vlsi::stats::harmonic_mean;
use vlsi::tech::{OperatingPoint, TechNode};
use vlsi::units::{Power, Time};
use std::sync::OnceLock;
use workloads::{RecordedTrace, SpecBenchmark};

/// Configuration of an evaluation campaign.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Technology node (sets clock frequency and energies).
    pub node: TechNode,
    /// Measured instructions per benchmark.
    pub instructions: u64,
    /// Warmup instructions per benchmark (caches + predictors).
    pub warmup: u64,
    /// Base seed; each benchmark derives its own stream deterministically.
    pub seed: u64,
    /// The benchmark subset to run (default: all eight).
    pub benchmarks: Vec<SpecBenchmark>,
    /// Machine configuration (default: Table 2; override for ablations).
    pub machine: MachineConfig,
    /// DVFS operating point, or `None` for the node's nominal corner.
    /// Stored unresolved so overriding `node` alone (the common ablation
    /// pattern) cannot leave a stale nominal point from another node
    /// behind; resolve through [`EvalConfig::op`].
    pub operating_point: Option<OperatingPoint>,
}

impl Default for EvalConfig {
    fn default() -> Self {
        Self {
            node: TechNode::N32,
            instructions: 200_000,
            warmup: 100_000,
            seed: 7,
            benchmarks: SpecBenchmark::ALL.to_vec(),
            machine: MachineConfig::TABLE2,
            operating_point: None,
        }
    }
}

impl EvalConfig {
    /// A reduced configuration for quick tests.
    pub fn quick() -> Self {
        Self {
            instructions: 50_000,
            warmup: 25_000,
            ..Self::default()
        }
    }

    /// The resolved operating point: the explicit one if set, else the
    /// node's nominal corner (whose clock is bit-identical to
    /// `node.chip_frequency()` — the fixed corner the pipeline assumed
    /// before DVFS existed).
    pub fn op(&self) -> OperatingPoint {
        self.operating_point
            .unwrap_or_else(|| OperatingPoint::nominal(self.node))
    }
}

/// One benchmark's measured results under one cache configuration.
#[derive(Debug, Clone)]
pub struct BenchRun {
    /// The benchmark.
    pub bench: SpecBenchmark,
    /// Pipeline results for the measured window.
    pub sim: SimResult,
    /// Cache statistics for the measured window.
    pub cache: CacheStats,
}

/// Suite results across the benchmark set.
#[derive(Debug, Clone)]
pub struct SuiteResult {
    /// Technology node the suite ran at.
    pub node: TechNode,
    /// Operating point the suite ran at (nominal unless the config set a
    /// DVFS point).
    pub op: OperatingPoint,
    /// Per-benchmark runs.
    pub runs: Vec<BenchRun>,
}

impl SuiteResult {
    /// Per-benchmark IPCs, in run order.
    pub fn per_bench_ipc(&self) -> Vec<f64> {
        self.runs.iter().map(|r| r.sim.ipc()).collect()
    }

    /// Harmonic-mean IPC — the paper's single-number aggregation.
    pub fn hm_ipc(&self) -> f64 {
        harmonic_mean(&self.per_bench_ipc())
    }

    /// Harmonic-mean BIPS at the suite's clock scaled by `freq_mult`
    /// (1.0 for 3T1D and ideal designs; the 6T multiplier otherwise).
    /// Uses the operating point's frequency, which at the nominal point is
    /// the node clock the paper assumes.
    pub fn hm_bips(&self, freq_mult: f64) -> f64 {
        self.hm_ipc() * self.op.freq.ghz() * freq_mult
    }

    /// Total simulated wall-clock time across the suite, at the operating
    /// point's clock period.
    pub fn total_time(&self) -> Time {
        let cycles: u64 = self.runs.iter().map(|r| r.sim.cycles).sum();
        self.op.clock_period() * cycles as f64
    }

    /// Mean dynamic power over the whole suite for a memory kind.
    pub fn mean_dynamic_power(&self, kind: MemKind) -> Power {
        let mut energy = vlsi::units::Energy::ZERO;
        for r in &self.runs {
            energy += r.cache.energy_events().total_energy(self.node, kind);
        }
        energy.average_power(self.total_time())
    }

    /// Performance normalized against a baseline suite: harmonic mean of
    /// per-benchmark IPC ratios (×`freq_mult` for frequency-scaled chips).
    ///
    /// # Panics
    ///
    /// Panics if the two suites ran different benchmark sets.
    pub fn normalized_performance(&self, baseline: &SuiteResult, freq_mult: f64) -> f64 {
        assert_eq!(self.runs.len(), baseline.runs.len(), "mismatched suites");
        let ratios: Vec<f64> = self
            .runs
            .iter()
            .zip(&baseline.runs)
            .map(|(a, b)| {
                assert_eq!(a.bench, b.bench, "mismatched benchmark order");
                a.sim.ipc() * freq_mult / b.sim.ipc()
            })
            .collect();
        harmonic_mean(&ratios)
    }

    /// The worst per-benchmark performance ratio against a baseline (the
    /// paper's "worst-case benchmark" annotation in Fig. 6b).
    pub fn worst_bench_performance(&self, baseline: &SuiteResult) -> (SpecBenchmark, f64) {
        self.runs
            .iter()
            .zip(&baseline.runs)
            .map(|(a, b)| (a.bench, a.sim.ipc() / b.sim.ipc()))
            .min_by(|x, y| x.1.partial_cmp(&y.1).expect("finite ratios"))
            .expect("non-empty suite")
    }

    /// Dynamic power normalized against a baseline suite (self measured as
    /// `kind`, baseline as ideal 6T SRAM).
    pub fn normalized_dynamic_power(&self, baseline: &SuiteResult, kind: MemKind) -> f64 {
        self.mean_dynamic_power(kind).value()
            / baseline.mean_dynamic_power(MemKind::Sram6t).value()
    }

    /// Aggregate miss rate over the suite.
    pub fn miss_rate(&self) -> f64 {
        let mut total = CacheStats::default();
        for r in &self.runs {
            total.merge(&r.cache);
        }
        total.miss_rate()
    }
}

/// Runs benchmark suites against cache configurations.
///
/// The benchmark instruction streams depend only on the configuration (not
/// on the cache under test), so the evaluator records each stream **once**
/// on first use and replays the shared read-only recording for every
/// subsequent suite — including concurrent suites in a
/// [`crate::campaign`] run, where the lazily-initialized recordings are
/// shared across worker threads.
#[derive(Debug, Clone)]
pub struct Evaluator {
    cfg: EvalConfig,
    /// Per-benchmark recorded streams, in `cfg.benchmarks` order; recorded
    /// lazily by the first suite run (thread-safe, recorded exactly once).
    traces: OnceLock<Vec<RecordedTrace>>,
}

impl Evaluator {
    /// Creates an evaluator.
    pub fn new(cfg: EvalConfig) -> Self {
        Self {
            cfg,
            traces: OnceLock::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &EvalConfig {
        &self.cfg
    }

    /// The shared per-benchmark recordings, recording them on first use.
    ///
    /// The recorded prefix covers warmup + measurement plus the pipeline's
    /// bounded in-flight tail (the ROB caps fetch-ahead); [`ReplayTrace`]
    /// panics rather than wrap if that invariant is ever violated.
    ///
    /// [`ReplayTrace`]: workloads::ReplayTrace
    fn recorded_traces(&self) -> &[RecordedTrace] {
        if let Some(traces) = self.traces.get() {
            obs::trace::instant("t3cache", "trace_memo.hit");
            return traces;
        }
        obs::trace::instant("t3cache", "trace_memo.miss");
        self.traces.get_or_init(|| {
            let _record_span = obs::trace::span("t3cache", "trace_memo.record");
            let slack = 2 * self.cfg.machine.rob_entries as u64 + 1024;
            let len = self.cfg.warmup + self.cfg.instructions + slack;
            self.cfg
                .benchmarks
                .iter()
                .enumerate()
                .map(|(i, &bench)| {
                    RecordedTrace::record(
                        bench.profile(),
                        self.cfg.seed ^ ((i as u64 + 1) << 20),
                        len,
                    )
                })
                .collect()
        })
    }

    /// Records the shared benchmark streams now if they aren't already
    /// (idempotent). Campaigns call this before fanning out so worker
    /// timings measure evaluation, not the one-off recording.
    pub fn warm_traces(&self) {
        let _ = self.recorded_traces();
    }

    /// Runs the suite, building a fresh cache per benchmark via `make`.
    pub fn run_suite(&self, mut make: impl FnMut() -> DataCache) -> SuiteResult {
        let runs = self
            .cfg
            .benchmarks
            .iter()
            .zip(self.recorded_traces())
            .map(|(&bench, recorded)| {
                let mut trace = recorded.replay();
                let mut cache = make();
                let (sim, cache_stats) = simulate_warmed_with(
                    self.cfg.machine,
                    &mut trace,
                    &mut cache,
                    self.cfg.warmup,
                    self.cfg.instructions,
                    recorded.icache_miss_rate(),
                );
                BenchRun {
                    bench,
                    sim,
                    cache: cache_stats,
                }
            })
            .collect();
        SuiteResult {
            node: self.cfg.node,
            op: self.cfg.op(),
            runs,
        }
    }

    /// The ideal-6T baseline at a given associativity.
    pub fn run_ideal(&self, ways: u32) -> SuiteResult {
        let cfg = CacheConfig {
            geometry: Geometry::paper_l1d_with_ways(ways),
            ..CacheConfig::paper(Scheme::default())
        };
        self.run_suite(|| DataCache::new(cfg, RetentionProfile::Infinite))
    }

    /// A 3T1D chip under a retention scheme at a given associativity.
    ///
    /// # Panics
    ///
    /// Panics if the scheme is `Global` and the chip is infeasible for it
    /// (check [`DataCache::global_scheme_feasible`] first).
    pub fn run_scheme(
        &self,
        profile: &RetentionProfile,
        scheme: Scheme,
        ways: u32,
    ) -> SuiteResult {
        // Size the line counters to the chip, per §4.3.1 ("larger
        // retention time requires larger N").
        self.run_scheme_custom(profile, scheme, ways, cachesim::CounterSpec::for_profile(profile))
    }

    /// Like [`Evaluator::run_scheme`] with an explicit line-counter spec —
    /// the §5 sensitivity sweep scales the counter step `N` with the mean
    /// retention, as the paper prescribes.
    pub fn run_scheme_custom(
        &self,
        profile: &RetentionProfile,
        scheme: Scheme,
        ways: u32,
        counter: cachesim::CounterSpec,
    ) -> SuiteResult {
        let cfg = CacheConfig {
            geometry: Geometry::paper_l1d_with_ways(ways),
            counter,
            ..CacheConfig::paper(scheme)
        };
        self.run_suite(|| DataCache::new(cfg, profile.clone()))
    }

    /// Evaluates one chip under one scheme (4-way), normalized against the
    /// provided ideal baseline. Returns `(normalized perf, normalized
    /// dynamic power)`.
    pub fn evaluate_chip(
        &self,
        chip: &ChipModel,
        scheme: Scheme,
        ideal: &SuiteResult,
    ) -> (f64, f64) {
        let u = self.evaluate_chip_full(chip, scheme, ideal);
        (u.perf, u.power)
    }

    /// [`Evaluator::evaluate_chip`] keeping the full counter detail: the
    /// normalized numbers plus the suite-aggregated cache and pipeline
    /// counters, so campaigns can surface *why* a scheme won or lost in
    /// their run manifests.
    pub fn evaluate_chip_full(
        &self,
        chip: &ChipModel,
        scheme: Scheme,
        ideal: &SuiteResult,
    ) -> UnitEval {
        let suite = self.run_scheme(chip.retention_profile(), scheme, 4);
        let mut cache = CacheStats::default();
        let mut sim = SimResult::default();
        for run in &suite.runs {
            cache.merge(&run.cache);
            sim.merge(&run.sim);
        }
        UnitEval {
            perf: suite.normalized_performance(ideal, 1.0),
            power: suite.normalized_dynamic_power(ideal, MemKind::Dram3t1d),
            hm_ipc: suite.hm_ipc(),
            cache,
            sim,
        }
    }
}

/// One `(chip, scheme)` evaluation with its full counter detail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitEval {
    /// Performance normalized against the ideal-6T baseline.
    pub perf: f64,
    /// Dynamic power normalized against the ideal-6T baseline.
    pub power: f64,
    /// Harmonic-mean IPC over the suite.
    pub hm_ipc: f64,
    /// Cache counters summed across the suite's benchmarks.
    pub cache: CacheStats,
    /// Pipeline counters summed across the suite's benchmarks.
    pub sim: SimResult,
}

impl UnitEval {
    /// Exports the unit's numbers and both counter layers under `prefix`.
    pub fn export(&self, m: &mut obs::MetricsRegistry, prefix: &str) {
        m.set_gauge(&format!("{prefix}.perf"), self.perf);
        m.set_gauge(&format!("{prefix}.power"), self.power);
        m.set_gauge(&format!("{prefix}.hm_ipc"), self.hm_ipc);
        self.cache.export(m, &format!("{prefix}.cache"));
        self.sim.export(m, &format!("{prefix}.pipe"));
    }

    /// Merges another unit's raw counters into this one. The normalized
    /// numbers (`perf`, `power`, `hm_ipc`) are ratios and do not sum —
    /// they are left untouched; the caller recomputes summary gauges.
    pub fn merge_counters(&mut self, o: &UnitEval) {
        self.cache.merge(&o.cache);
        self.sim.merge(&o.sim);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachesim::RefreshPolicy;

    fn quick_eval() -> Evaluator {
        let mut cfg = EvalConfig::quick();
        cfg.benchmarks = vec![SpecBenchmark::Gzip, SpecBenchmark::Mcf];
        Evaluator::new(cfg)
    }

    #[test]
    fn ideal_suite_is_deterministic() {
        let e = quick_eval();
        let a = e.run_ideal(4);
        let b = e.run_ideal(4);
        assert_eq!(a.hm_ipc(), b.hm_ipc());
        assert!(a.hm_ipc() > 0.3);
    }

    #[test]
    fn self_normalization_is_unity() {
        let e = quick_eval();
        let ideal = e.run_ideal(4);
        assert!((ideal.normalized_performance(&ideal, 1.0) - 1.0).abs() < 1e-12);
        assert!(
            (ideal.normalized_dynamic_power(&ideal, MemKind::Sram6t) - 1.0).abs() < 1e-12
        );
    }

    #[test]
    fn long_retention_3t1d_matches_ideal_closely() {
        let e = quick_eval();
        let ideal = e.run_ideal(4);
        // 30 µs retention at 4.3 GHz ≈ 129 K cycles: virtually no expiry.
        let profile = RetentionProfile::uniform_cycles(129_000, 1024);
        let suite = e.run_scheme(&profile, Scheme::no_refresh_lru(), 4);
        let perf = suite.normalized_performance(&ideal, 1.0);
        assert!(perf > 0.97, "perf {perf}");
    }

    #[test]
    fn short_retention_no_refresh_hurts() {
        let e = quick_eval();
        let ideal = e.run_ideal(4);
        // 2 K-cycle retention: heavy expiry under no-refresh/LRU.
        let profile = RetentionProfile::uniform_cycles(2_000, 1024);
        let suite = e.run_scheme(&profile, Scheme::no_refresh_lru(), 4);
        let perf = suite.normalized_performance(&ideal, 1.0);
        assert!(perf < 0.995, "perf {perf}");
        // And it costs extra L2 energy.
        let p = suite.normalized_dynamic_power(&ideal, MemKind::Dram3t1d);
        assert!(p > 1.0, "power {p}");
    }

    #[test]
    fn global_scheme_near_ideal_without_variation() {
        // §4.1: global refresh costs <1 % performance at nominal retention.
        let e = Evaluator::new(EvalConfig {
            benchmarks: vec![SpecBenchmark::Gzip, SpecBenchmark::Crafty],
            ..EvalConfig::quick()
        });
        let ideal = e.run_ideal(4);
        // 6000 ns at 4.3 GHz = 25.8 K cycles.
        let profile = RetentionProfile::uniform_cycles(25_800, 1024);
        let suite = e.run_scheme(&profile, Scheme::global(), 4);
        let perf = suite.normalized_performance(&ideal, 1.0);
        assert!(perf > 0.985, "global-scheme perf {perf}");
        assert!(suite.runs.iter().all(|r| r.cache.global_passes > 0));
    }

    #[test]
    fn full_refresh_beats_no_refresh_on_short_retention() {
        let e = quick_eval();
        let profile = RetentionProfile::uniform_cycles(9_000, 1024);
        let nr = e.run_scheme(&profile, Scheme::no_refresh_lru(), 4);
        let fr = e.run_scheme(
            &profile,
            Scheme::new(RefreshPolicy::Full, cachesim::ReplacementPolicy::Lru),
            4,
        );
        assert!(fr.hm_ipc() >= nr.hm_ipc() * 0.98, "full {} vs none {}", fr.hm_ipc(), nr.hm_ipc());
    }

    #[test]
    fn worst_bench_is_below_mean() {
        let e = quick_eval();
        let ideal = e.run_ideal(4);
        let profile = RetentionProfile::uniform_cycles(4_000, 1024);
        let suite = e.run_scheme(&profile, Scheme::no_refresh_lru(), 4);
        let (bench, worst) = suite.worst_bench_performance(&ideal);
        let mean = suite.normalized_performance(&ideal, 1.0);
        assert!(worst <= mean + 1e-9, "{bench} worst {worst} vs mean {mean}");
    }

    #[test]
    fn suite_miss_rate_aggregates_runs() {
        let e = quick_eval();
        let ideal = e.run_ideal(4);
        let rate = ideal.miss_rate();
        assert!(rate > 0.0 && rate < 0.5, "rate {rate}");
        // Aggregated rate sits between the per-run extremes.
        let rates: Vec<f64> = ideal.runs.iter().map(|r| r.cache.miss_rate()).collect();
        let lo = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = rates.iter().cloned().fold(0.0f64, f64::max);
        assert!(rate >= lo && rate <= hi);
    }

    #[test]
    fn per_bench_ipc_matches_runs() {
        let e = quick_eval();
        let suite = e.run_ideal(4);
        let ipcs = suite.per_bench_ipc();
        assert_eq!(ipcs.len(), suite.runs.len());
        for (ipc, run) in ipcs.iter().zip(&suite.runs) {
            assert_eq!(*ipc, run.sim.ipc());
        }
        // Harmonic mean below max, above min.
        let hm = suite.hm_ipc();
        assert!(hm <= ipcs.iter().cloned().fold(0.0f64, f64::max) + 1e-12);
        assert!(hm >= ipcs.iter().cloned().fold(f64::INFINITY, f64::min) - 1e-12);
    }

    #[test]
    fn evaluate_chip_wrapper_matches_manual_path() {
        let pop = crate::chip::ChipPopulation::generate(
            TechNode::N32,
            vlsi::VariationCorner::Severe.params(),
            4,
            77,
        );
        let chip = pop.select(crate::chip::ChipGrade::Median);
        let e = quick_eval();
        let ideal = e.run_ideal(4);
        let (perf, power) = e.evaluate_chip(chip, Scheme::rsp_fifo(), &ideal);
        let suite = e.run_scheme(chip.retention_profile(), Scheme::rsp_fifo(), 4);
        assert_eq!(perf, suite.normalized_performance(&ideal, 1.0));
        assert_eq!(power, suite.normalized_dynamic_power(&ideal, MemKind::Dram3t1d));
    }

    #[test]
    fn nominal_operating_point_reproduces_the_fixed_corner() {
        let e = quick_eval();
        let implicit = e.run_ideal(4);
        let mut cfg = e.config().clone();
        cfg.operating_point = Some(OperatingPoint::nominal(cfg.node));
        let explicit = Evaluator::new(cfg).run_ideal(4);
        // The old fixed-corner math (node clock everywhere) and the
        // explicit nominal point must agree bit-for-bit.
        assert_eq!(implicit.hm_bips(1.0), explicit.hm_bips(1.0));
        assert_eq!(implicit.total_time(), explicit.total_time());
        assert_eq!(
            implicit.mean_dynamic_power(MemKind::Sram6t).value(),
            explicit.mean_dynamic_power(MemKind::Sram6t).value()
        );
    }

    #[test]
    fn scaled_operating_point_changes_bips_and_time() {
        let e = quick_eval();
        let mut cfg = e.config().clone();
        let half = vlsi::units::Frequency::from_ghz(cfg.node.chip_frequency().ghz() / 2.0);
        cfg.operating_point = Some(OperatingPoint::nominal(cfg.node).with_freq(half));
        let slow = Evaluator::new(cfg).run_suite(|| {
            DataCache::new(
                CacheConfig::paper(Scheme::default()),
                RetentionProfile::Infinite,
            )
        });
        let fast = e.run_ideal(4);
        // Same instruction streams, so IPC matches; BIPS halves and the
        // simulated wall-clock doubles at half frequency.
        assert_eq!(slow.hm_ipc(), fast.hm_ipc());
        assert!((slow.hm_bips(1.0) - fast.hm_bips(1.0) / 2.0).abs() < 1e-9);
        assert!((slow.total_time().value() - 2.0 * fast.total_time().value()).abs() < 1e-15);
    }

    #[test]
    fn frequency_multiplier_scales_normalized_perf() {
        let e = quick_eval();
        let ideal = e.run_ideal(4);
        let perf = ideal.normalized_performance(&ideal, 0.84);
        assert!((perf - 0.84).abs() < 1e-9);
    }
}
