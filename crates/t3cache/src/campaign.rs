//! Parallel Monte-Carlo campaign engine.
//!
//! The paper's headline experiments (Figs. 6b, 9, 10, 11, 12; Table 3)
//! all share one shape: a **campaign** of many mutually independent work
//! units — typically one per `(chip, scheme)` pair — whose results are
//! reported in a fixed order. This module fans those units across a scoped
//! worker pool while keeping the output **bit-identical to a serial run**:
//!
//! * every unit's randomness derives from its own index (chip RNG streams
//!   are seeded from `(base_seed, chip_k)` inside
//!   [`vlsi::montecarlo::ChipFactory`], benchmark streams from
//!   `(seed, bench_i)` and pre-recorded by the shared
//!   [`crate::evaluate::Evaluator`]), so no unit observes another's
//!   scheduling;
//! * the plain fan-out ([`map_indexed_with_workers`]) hands each worker
//!   one **contiguous index shard** ([`shard_ranges`]): no shared claim
//!   counter on the hot path, no per-unit synchronization — a worker
//!   touches only its own cache-warm run of indices and the merge is a
//!   straight concatenation. Shard-sized checkpointing rides the same
//!   engine via [`map_shards_with_hooks`];
//! * the per-unit hook engine ([`map_indexed_with_hooks`]) keeps the
//!   atomic-counter claim loop for callers that need *unit*-granular
//!   resume/persist (the orchestrator's crash-safe stages);
//! * either way, results are merged into pre-indexed slots — position
//!   `i` of the output always holds unit `i`'s result, whatever thread
//!   or order computed it.
//!
//! The pool is `std::thread::scope`-based: no dependencies, no `unsafe`,
//! borrows of the campaign's shared inputs (chip populations, recorded
//! traces, baselines) work directly. Worker count comes from
//! `PV3T1D_WORKERS` (useful both for `=1` serial baselines and CI caps)
//! or [`std::thread::available_parallelism`].
//!
//! Each unit is also individually timed, so a campaign reports its wall
//! clock next to the *estimated serial time* (the sum of unit times): the
//! speedup banner the figure binaries print is measured, not assumed.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crate::chip::ChipModel;
use crate::evaluate::{Evaluator, SuiteResult, UnitEval};
use cachesim::Scheme;

/// Environment variable overriding the worker count (`0` or unset ⇒
/// auto-detect; `1` ⇒ a true serial run on the calling thread).
pub const WORKERS_ENV: &str = "PV3T1D_WORKERS";

/// The campaign worker count: `PV3T1D_WORKERS` if set and non-zero, else
/// the host's available parallelism.
pub fn worker_count() -> usize {
    if let Ok(v) = std::env::var(WORKERS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Timing summary of one campaign run.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Work units executed.
    pub units: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock time of the whole fan-out (including the merge).
    pub wall: Duration,
    /// Sum of the individual unit times — what a serial loop over the
    /// same units would have cost (modulo cache warmth).
    pub serial_estimate: Duration,
    /// Units each worker handled (shard sizes for the static-shard
    /// fan-out, atomic-counter claim counts for the per-unit hook engine;
    /// length = worker count).
    pub per_worker_units: Vec<usize>,
    /// Per-unit execution times in seconds, indexed by unit (0 for
    /// resumed units — they were not recomputed).
    pub unit_seconds: Vec<f64>,
    /// Units served from a [`UnitHooks::resume`] checkpoint instead of
    /// being recomputed.
    pub resumed_units: usize,
}

impl CampaignReport {
    /// Measured speedup: estimated serial time over wall-clock time.
    pub fn speedup(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall <= 0.0 {
            return 1.0;
        }
        self.serial_estimate.as_secs_f64() / wall
    }

    /// Folds another fan-out's timing into this one (for binaries that run
    /// several campaigns and report one aggregate banner): units, wall and
    /// serial estimate add; the worker count takes the maximum; per-worker
    /// steal counts add slot-wise; unit timings concatenate.
    pub fn absorb(&mut self, other: &CampaignReport) {
        self.units += other.units;
        self.workers = self.workers.max(other.workers);
        self.wall += other.wall;
        self.serial_estimate += other.serial_estimate;
        if self.per_worker_units.len() < other.per_worker_units.len() {
            self.per_worker_units.resize(other.per_worker_units.len(), 0);
        }
        for (slot, &n) in self.per_worker_units.iter_mut().zip(&other.per_worker_units) {
            *slot += n;
        }
        self.unit_seconds.extend_from_slice(&other.unit_seconds);
        self.resumed_units += other.resumed_units;
    }

    /// An empty report to [`CampaignReport::absorb`] into.
    pub fn empty() -> Self {
        Self {
            units: 0,
            workers: 1,
            wall: Duration::ZERO,
            serial_estimate: Duration::ZERO,
            per_worker_units: Vec::new(),
            unit_seconds: Vec::new(),
            resumed_units: 0,
        }
    }

    /// Exports the campaign timing under the `campaign.` prefix: unit and
    /// worker counts, wall/serial seconds, measured speedup, per-worker
    /// steal counts, and a 16-bucket histogram of unit times. All of these
    /// names fall under [`obs::MetricsRegistry::is_timing_metric`], so they
    /// are recorded in manifests but excluded from determinism
    /// fingerprints (scheduling is allowed to differ between runs).
    pub fn export(&self, m: &mut obs::MetricsRegistry) {
        m.set_counter("campaign.units", self.units as u64);
        m.set_counter("campaign.workers", self.workers as u64);
        m.set_counter("campaign.resumed_units", self.resumed_units as u64);
        m.set_gauge("campaign.wall_seconds", self.wall.as_secs_f64());
        m.set_gauge(
            "campaign.serial_estimate_seconds",
            self.serial_estimate.as_secs_f64(),
        );
        m.set_gauge("campaign.speedup", self.speedup());
        for (w, &n) in self.per_worker_units.iter().enumerate() {
            m.set_counter(&format!("campaign.worker.{w:02}.units"), n as u64);
        }
        if !self.unit_seconds.is_empty() {
            let hi = self
                .unit_seconds
                .iter()
                .cloned()
                .fold(0.0f64, f64::max)
                .max(1e-9);
            // Upper edge nudged so the maximum lands in the last bucket
            // rather than the overflow slot.
            let h = m.histogram("campaign.unit_seconds", 0.0, hi * (1.0 + 1e-12), 16);
            for &s in &self.unit_seconds {
                h.record(s);
            }
        }
    }

    /// One-line banner summary (`units`, `workers`, wall, speedup).
    pub fn banner_line(&self) -> String {
        format!(
            "campaign: {} units on {} workers, wall {:.2}s, est. serial {:.2}s, speedup {:.2}x",
            self.units,
            self.workers,
            self.wall.as_secs_f64(),
            self.serial_estimate.as_secs_f64(),
            self.speedup()
        )
    }
}

/// Fans `f(0..n)` across the campaign worker pool and returns the results
/// in index order, plus the timing report.
///
/// Scheduling cannot reorder or tear results: unit `i`'s result lands in
/// slot `i`, and `f` must derive any randomness from `i` alone (the
/// workspace's chip factories and recorded benchmark streams do — see the
/// module docs). With `PV3T1D_WORKERS=1` the units run on the calling
/// thread in index order, which is the literal serial loop.
pub fn map_indexed<R, F>(n: usize, f: F) -> (Vec<R>, CampaignReport)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    map_indexed_with_workers(n, worker_count(), f)
}

/// [`map_indexed`] with an explicit worker count (the determinism tests
/// compare 1 vs N directly, without touching the environment).
///
/// Each worker computes one contiguous index shard — see [`shard_ranges`]
/// and the module docs. Because unit `i` depends only on `i`, the shard
/// partition (and therefore the worker count) cannot change any result.
pub fn map_indexed_with_workers<R, F>(n: usize, workers: usize, f: F) -> (Vec<R>, CampaignReport)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let (shards, report) = map_shards_with_hooks(n, workers, UnitHooks::none(), f);
    let mut results = Vec::with_capacity(n);
    for (s, shard) in shards.into_iter().enumerate() {
        results.append(&mut shard.unwrap_or_else(|| panic!("shard {s} never ran")));
    }
    (results, report)
}

/// Balanced contiguous partition of `0..n` into at most `shards` runs:
/// lengths differ by at most one, earlier shards take the remainder, and
/// concatenating the ranges in order reproduces `0..n` exactly. With
/// `n == 0` there is a single empty shard.
pub fn shard_ranges(n: usize, shards: usize) -> Vec<std::ops::Range<usize>> {
    let shards = shards.max(1).min(n.max(1));
    let base = n / shards;
    let rem = n % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0usize;
    for s in 0..shards {
        let len = base + usize::from(s < rem);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// The shard-granular fan-out: partitions `0..n` into contiguous shards
/// ([`shard_ranges`]), runs one worker thread per shard, and treats the
/// **whole shard as the checkpoint unit** — `hooks.resume`/`hooks.persist`
/// are keyed by shard index and carry the shard's full result vector.
///
/// Rationale for shard = checkpoint unit: with the SoA batch kernels a
/// single chip unit is milliseconds of work, so per-unit checkpoint I/O
/// rivals the work itself; a shard amortizes one store over `n / workers`
/// units while bounding recomputation after a crash to one shard.
///
/// Cancellation is checked between units; a shard interrupted mid-run
/// returns a `None` slot and is **not** persisted (a checkpoint is never
/// torn mid-shard). Each shard emits a `campaign.shard` trace span and
/// counter carrying its unit count.
///
/// # Panics
///
/// Panics if `hooks.resume` returns a shard whose length does not match
/// the shard's range (a stale checkpoint from a different geometry).
pub fn map_shards_with_hooks<R, F>(
    n: usize,
    workers: usize,
    hooks: UnitHooks<'_, Vec<R>>,
    f: F,
) -> (Vec<Option<Vec<R>>>, CampaignReport)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let ranges = shard_ranges(n, workers);
    let shards = ranges.len();
    let start = Instant::now();
    let _campaign_span =
        obs::trace::span_with("t3cache", || format!("campaign.map:{n}x{shards}shards"));
    let resumed = AtomicUsize::new(0);

    type ShardOutcome<R> = (Option<Vec<R>>, Vec<(usize, Duration)>);
    let run_shard = |s: usize, range: std::ops::Range<usize>| -> ShardOutcome<R> {
        if hooks.cancel.is_some_and(obs::CancelToken::is_cancelled) {
            return (None, Vec::new());
        }
        let len = range.end - range.start;
        if let Some(resume) = hooks.resume {
            if let Some(r) = resume(s) {
                assert_eq!(
                    r.len(),
                    len,
                    "resumed shard {s} holds {} units, expected {len}",
                    r.len()
                );
                resumed.fetch_add(len, Ordering::Relaxed);
                obs::trace::instant_with("t3cache", || format!("campaign.shard.resumed:{s}"));
                return (Some(r), Vec::new());
            }
        }
        let _shard_span =
            obs::trace::span_with("t3cache", || format!("campaign.shard:{s}:{len}units"));
        let mut local = Vec::with_capacity(len);
        let mut times = Vec::with_capacity(len);
        for i in range {
            if hooks.cancel.is_some_and(obs::CancelToken::is_cancelled) {
                return (None, times); // torn shard: dropped, never persisted
            }
            let _unit_span = obs::trace::span_with("t3cache", || format!("unit:{i}"));
            let t0 = Instant::now();
            local.push(f(i));
            times.push((i, t0.elapsed()));
        }
        obs::trace::counter("campaign.shard", len as f64);
        // Emitted at shard *completion* so the per-shard unit count stays
        // visible in `pv3t1d report --trace` even when an event-heavy
        // stage has evicted the shard's begin-span from the trace ring.
        obs::trace::instant_with("t3cache", || format!("campaign.shard.done:{s}:{len}units"));
        if let Some(persist) = hooks.persist {
            persist(s, &local);
        }
        (Some(local), times)
    };

    let outcomes: Vec<ShardOutcome<R>> = if shards == 1 {
        vec![run_shard(0, ranges[0].clone())]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .iter()
                .cloned()
                .enumerate()
                .map(|(s, range)| {
                    let run_shard = &run_shard;
                    scope.spawn(move || {
                        let _worker_span =
                            obs::trace::span_with("t3cache", || format!("worker:{s}"));
                        run_shard(s, range)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("campaign shard worker panicked"))
                .collect()
        })
    };

    let per_worker_units: Vec<usize> = ranges.iter().map(|r| r.end - r.start).collect();
    let mut serial_estimate = Duration::ZERO;
    let mut unit_seconds = vec![0.0f64; n];
    let mut slots: Vec<Option<Vec<R>>> = Vec::with_capacity(shards);
    for (slot, times) in outcomes {
        for &(i, dt) in &times {
            serial_estimate += dt;
            unit_seconds[i] = dt.as_secs_f64();
        }
        slots.push(slot);
    }

    let report = CampaignReport {
        units: n,
        workers: shards,
        wall: start.elapsed(),
        serial_estimate,
        per_worker_units,
        unit_seconds,
        resumed_units: resumed.load(Ordering::Relaxed),
    };
    (slots, report)
}

/// Signature of the [`UnitHooks::resume`] hook.
pub type ResumeHook<'a, R> = &'a (dyn Fn(usize) -> Option<R> + Sync);

/// Signature of the [`UnitHooks::persist`] hook.
pub type PersistHook<'a, R> = &'a (dyn Fn(usize, &R) + Sync);

/// Checkpoint and cancellation hooks for [`map_indexed_with_hooks`].
///
/// All three are optional; [`UnitHooks::none`] is the plain fan-out. The
/// hooks keep the campaign engine free of any storage dependency — the
/// orchestrator provides closures backed by its content-addressed store,
/// tests provide closures over a `HashMap`.
///
/// The determinism contract carries over: `resume` must return exactly
/// what `f` would compute for the same index (the orchestrator guarantees
/// this by keying checkpoints on the full stage fingerprint), and
/// `persist`/`resume` may be called concurrently from several workers.
pub struct UnitHooks<'a, R> {
    /// Returns a previously persisted result for a unit, if one exists.
    /// Tried before computing; a hit skips `f` and `persist` entirely.
    pub resume: Option<ResumeHook<'a, R>>,
    /// Called with each freshly computed unit result, before the merge.
    /// Persistence is best-effort: a hook that drops the result on the
    /// floor only costs recomputation on the next resume.
    pub persist: Option<PersistHook<'a, R>>,
    /// Cooperative cancellation, checked before each unit is claimed.
    /// Once set, workers stop claiming; units already in flight finish
    /// (and are persisted), so a checkpoint is never torn mid-unit.
    pub cancel: Option<&'a obs::CancelToken>,
}

impl<R> UnitHooks<'_, R> {
    /// No hooks: behaves exactly like the plain fan-out.
    pub fn none() -> Self {
        Self {
            resume: None,
            persist: None,
            cancel: None,
        }
    }
}

impl<R> Default for UnitHooks<'_, R> {
    fn default() -> Self {
        Self::none()
    }
}

/// The hook-aware core of [`map_indexed_with_workers`]: fans `f(0..n)`
/// across `workers` threads with optional per-unit resume/persist hooks
/// and cooperative cancellation.
///
/// Returns one slot per unit, in index order. A slot is `None` only when
/// cancellation stopped the unit from being claimed — an uncancelled run
/// always fills every slot. Resumed units count toward
/// [`CampaignReport::resumed_units`] and contribute zero unit time.
pub fn map_indexed_with_hooks<R, F>(
    n: usize,
    workers: usize,
    hooks: UnitHooks<'_, R>,
    f: F,
) -> (Vec<Option<R>>, CampaignReport)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = workers.max(1).min(n.max(1));
    let start = Instant::now();
    let _campaign_span = obs::trace::span_with("t3cache", || format!("campaign.map:{n}x{workers}"));

    let resumed = AtomicUsize::new(0);
    let run_units = |results: &mut Vec<(usize, R, Duration)>, next: &AtomicUsize| loop {
        if hooks.cancel.is_some_and(obs::CancelToken::is_cancelled) {
            break;
        }
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        if let Some(resume) = hooks.resume {
            if let Some(r) = resume(i) {
                resumed.fetch_add(1, Ordering::Relaxed);
                obs::trace::instant_with("t3cache", || format!("unit.resumed:{i}"));
                results.push((i, r, Duration::ZERO));
                continue;
            }
        }
        let _unit_span = obs::trace::span_with("t3cache", || format!("unit:{i}"));
        let t0 = Instant::now();
        let r = f(i);
        if let Some(persist) = hooks.persist {
            persist(i, &r);
        }
        results.push((i, r, t0.elapsed()));
    };

    let next = AtomicUsize::new(0);
    let mut batches: Vec<Vec<(usize, R, Duration)>> = if workers == 1 {
        let mut local = Vec::with_capacity(n);
        run_units(&mut local, &next);
        vec![local]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let run_units = &run_units;
                    let next = &next;
                    scope.spawn(move || {
                        let _worker_span =
                            obs::trace::span_with("t3cache", || format!("worker:{w}"));
                        let mut local = Vec::new();
                        run_units(&mut local, next);
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("campaign worker panicked"))
                .collect()
        })
    };

    // Merge into pre-indexed slots: output order is unit-index order, no
    // matter which worker finished which unit when. Slots left `None`
    // were never claimed (cancellation).
    let per_worker_units: Vec<usize> = batches.iter().map(Vec::len).collect();
    let mut serial_estimate = Duration::ZERO;
    let mut unit_seconds = vec![0.0f64; n];
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for batch in &mut batches {
        for (i, r, dt) in batch.drain(..) {
            serial_estimate += dt;
            unit_seconds[i] = dt.as_secs_f64();
            debug_assert!(slots[i].is_none(), "unit {i} computed twice");
            slots[i] = Some(r);
        }
    }

    let report = CampaignReport {
        units: n,
        workers,
        wall: start.elapsed(),
        serial_estimate,
        per_worker_units,
        unit_seconds,
        resumed_units: resumed.load(Ordering::Relaxed),
    };
    (slots, report)
}

/// One `(chip, scheme)` evaluation result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitResult {
    /// Index of the chip within the campaign's chip slice.
    pub chip: usize,
    /// Index of the scheme within the campaign's scheme slice.
    pub scheme: usize,
    /// Performance normalized against the ideal-6T baseline.
    pub perf: f64,
    /// Dynamic power normalized against the ideal-6T baseline.
    pub power: f64,
}

/// Results of a chips × schemes campaign, pre-indexed by scheme then chip.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// `grid[s][c]` is chip `c` under scheme `s`, in input order.
    pub grid: Vec<Vec<UnitEval>>,
    /// Timing of the fan-out.
    pub report: CampaignReport,
}

impl CampaignResult {
    /// The per-chip evaluations for one scheme, in chip order.
    pub fn per_chip(&self, scheme: usize) -> &[UnitEval] {
        &self.grid[scheme]
    }

    /// Per-chip normalized performances for one scheme.
    pub fn perfs(&self, scheme: usize) -> Vec<f64> {
        self.grid[scheme].iter().map(|u| u.perf).collect()
    }

    /// Per-chip normalized dynamic powers for one scheme.
    pub fn powers(&self, scheme: usize) -> Vec<f64> {
        self.grid[scheme].iter().map(|u| u.power).collect()
    }

    /// Exports one scheme's row into a metrics registry under
    /// `scheme.<label>`: mean normalized perf/power across chips plus the
    /// cache and pipeline counters summed over every chip's suite. These
    /// are *result* metrics — deterministic for a fixed seed and part of
    /// the manifest determinism fingerprint.
    pub fn export_scheme(&self, m: &mut obs::MetricsRegistry, scheme: usize, label: &str) {
        let row = &self.grid[scheme];
        let prefix = format!("scheme.{label}");
        if !row.is_empty() {
            let n = row.len() as f64;
            let perf_mean = row.iter().map(|u| u.perf).sum::<f64>() / n;
            let power_mean = row.iter().map(|u| u.power).sum::<f64>() / n;
            m.set_gauge(&format!("{prefix}.perf.mean"), perf_mean);
            m.set_gauge(&format!("{prefix}.power.mean"), power_mean);
            m.set_counter(&format!("{prefix}.chips"), row.len() as u64);
            let mut total = row[0];
            for u in &row[1..] {
                total.merge_counters(u);
            }
            total.cache.export(m, &format!("{prefix}.cache"));
            total.sim.export(m, &format!("{prefix}.pipe"));
        }
    }

    /// [`CampaignResult::export_scheme`] over every scheme, followed by the
    /// campaign timing (`campaign.*`, fingerprint-excluded).
    pub fn export(&self, m: &mut obs::MetricsRegistry, labels: &[String]) {
        assert_eq!(labels.len(), self.grid.len(), "one label per scheme");
        for (s, label) in labels.iter().enumerate() {
            self.export_scheme(m, s, label);
        }
        self.report.export(m);
    }
}

/// Evaluates every chip under every scheme (4-way, normalized against
/// `ideal`), fanning the `chips.len() × schemes.len()` independent units
/// across the worker pool.
///
/// Equivalent to — and bit-identical with — the serial nested loop
/// `for scheme in schemes { for chip in chips { evaluate_chip(..) } }`.
pub fn evaluate_grid(
    eval: &Evaluator,
    chips: &[&ChipModel],
    schemes: &[Scheme],
    ideal: &SuiteResult,
) -> CampaignResult {
    evaluate_grid_with_workers(eval, chips, schemes, ideal, worker_count())
}

/// [`evaluate_grid`] with an explicit worker count.
pub fn evaluate_grid_with_workers(
    eval: &Evaluator,
    chips: &[&ChipModel],
    schemes: &[Scheme],
    ideal: &SuiteResult,
    workers: usize,
) -> CampaignResult {
    let n_chips = chips.len();
    let units = n_chips * schemes.len();
    // Pre-record the shared benchmark streams before fanning out, so unit
    // timings measure evaluation, not a one-off recording race.
    eval.warm_traces();
    let (flat, report) = map_indexed_with_workers(units, workers, |i| {
        let (s, c) = (i / n_chips, i % n_chips);
        eval.evaluate_chip_full(chips[c], schemes[s], ideal)
    });
    let mut grid = Vec::with_capacity(schemes.len());
    let mut it = flat.into_iter();
    for _ in 0..schemes.len() {
        grid.push(it.by_ref().take(n_chips).collect());
    }
    CampaignResult { grid, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::ChipPopulation;
    use crate::evaluate::EvalConfig;
    use vlsi::tech::TechNode;
    use vlsi::variation::VariationCorner;
    use workloads::SpecBenchmark;

    #[test]
    fn map_indexed_preserves_order() {
        for workers in [1, 2, 5] {
            let (out, report) =
                map_indexed_with_workers(100, workers, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
            assert_eq!(report.units, 100);
            assert!(report.workers <= workers.max(1));
        }
    }

    #[test]
    fn map_indexed_handles_empty_and_single() {
        let (out, report) = map_indexed_with_workers(0, 4, |i| i);
        assert!(out.is_empty());
        assert_eq!(report.units, 0);
        let (out, _) = map_indexed_with_workers(1, 4, |i| i + 7);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn hooks_persist_then_resume_bit_identically() {
        use std::collections::HashMap;
        use std::sync::Mutex;

        // First pass: compute everything, persisting into a map.
        let store: Mutex<HashMap<usize, u64>> = Mutex::new(HashMap::new());
        let persist = |i: usize, r: &u64| {
            store.lock().unwrap().insert(i, *r);
        };
        let hooks = UnitHooks {
            persist: Some(&persist),
            ..UnitHooks::none()
        };
        let (first, report) =
            map_indexed_with_hooks(50, 4, hooks, |i| (i as u64).wrapping_mul(0x9E37_79B9));
        assert_eq!(report.resumed_units, 0);
        assert_eq!(store.lock().unwrap().len(), 50);

        // Second pass: every unit resumes; computing is a test failure.
        let resume = |i: usize| store.lock().unwrap().get(&i).copied();
        let hooks = UnitHooks {
            resume: Some(&resume),
            ..UnitHooks::none()
        };
        let (second, report) = map_indexed_with_hooks(50, 4, hooks, |i| {
            panic!("unit {i} recomputed despite a full checkpoint")
        });
        assert_eq!(report.resumed_units, 50);
        assert_eq!(first, second, "resumed results must be bit-identical");

        // Partial checkpoint: only even units resume, odd ones compute.
        store.lock().unwrap().retain(|&i, _| i % 2 == 0);
        let resume = |i: usize| store.lock().unwrap().get(&i).copied();
        let hooks = UnitHooks {
            resume: Some(&resume),
            ..UnitHooks::none()
        };
        let (third, report) =
            map_indexed_with_hooks(50, 4, hooks, |i| (i as u64).wrapping_mul(0x9E37_79B9));
        assert_eq!(report.resumed_units, 25);
        assert_eq!(first, third);
    }

    #[test]
    fn shard_ranges_partition_exactly() {
        for n in [0usize, 1, 7, 37, 100] {
            for shards in [1usize, 2, 3, 8, 16, 200] {
                let ranges = shard_ranges(n, shards);
                assert!(!ranges.is_empty());
                assert!(ranges.len() <= shards.max(1));
                // Concatenating the ranges reproduces 0..n exactly.
                let mut next = 0usize;
                for r in &ranges {
                    assert_eq!(r.start, next, "n={n} shards={shards}");
                    next = r.end;
                }
                assert_eq!(next, n);
                // Balanced: lengths differ by at most one.
                let lens: Vec<usize> = ranges.iter().map(|r| r.end - r.start).collect();
                let (lo, hi) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                assert!(hi - lo <= 1, "n={n} shards={shards} lens={lens:?}");
            }
        }
    }

    /// The shard-sized checkpoint satellite: persist whole shards, kill,
    /// resume from the shard store bit-identically — including with a
    /// different worker count only when the shard geometry matches.
    #[test]
    fn shards_persist_then_resume_bit_identically() {
        use std::collections::HashMap;
        use std::sync::Mutex;

        let compute = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9) ^ 0xA5;
        let store: Mutex<HashMap<usize, Vec<u64>>> = Mutex::new(HashMap::new());
        let persist = |s: usize, r: &Vec<u64>| {
            store.lock().unwrap().insert(s, r.clone());
        };
        let hooks = UnitHooks {
            persist: Some(&persist),
            ..UnitHooks::none()
        };
        let (first, report) = map_shards_with_hooks(37, 4, hooks, compute);
        assert_eq!(report.workers, 4);
        assert_eq!(report.resumed_units, 0);
        assert_eq!(store.lock().unwrap().len(), 4, "one checkpoint per shard");
        let first: Vec<u64> = first.into_iter().flatten().flatten().collect();
        assert_eq!(first, (0..37).map(compute).collect::<Vec<_>>());

        // Full resume: recomputing any unit is a test failure.
        let resume = |s: usize| store.lock().unwrap().get(&s).cloned();
        let hooks = UnitHooks {
            resume: Some(&resume),
            ..UnitHooks::none()
        };
        let (second, report) = map_shards_with_hooks(37, 4, hooks, |i| -> u64 {
            panic!("unit {i} recomputed despite a full shard checkpoint")
        });
        assert_eq!(report.resumed_units, 37);
        let second: Vec<u64> = second.into_iter().flatten().flatten().collect();
        assert_eq!(first, second, "resumed shards must be bit-identical");

        // Partial checkpoint (a crash that persisted only some shards):
        // missing shards recompute, present ones replay.
        store.lock().unwrap().retain(|&s, _| s % 2 == 0);
        let resume = |s: usize| store.lock().unwrap().get(&s).cloned();
        let hooks = UnitHooks {
            resume: Some(&resume),
            ..UnitHooks::none()
        };
        let (third, report) = map_shards_with_hooks(37, 4, hooks, compute);
        assert!(report.resumed_units > 0 && report.resumed_units < 37);
        let third: Vec<u64> = third.into_iter().flatten().flatten().collect();
        assert_eq!(first, third);
    }

    #[test]
    fn cancelled_shard_is_never_persisted() {
        use std::collections::HashMap;
        use std::sync::Mutex;

        let token = obs::CancelToken::new();
        let store: Mutex<HashMap<usize, Vec<usize>>> = Mutex::new(HashMap::new());
        let persist = |s: usize, r: &Vec<usize>| {
            store.lock().unwrap().insert(s, r.clone());
        };
        let hooks = UnitHooks {
            persist: Some(&persist),
            cancel: Some(&token),
            ..UnitHooks::none()
        };
        // Single shard, cancelled mid-run: the torn shard must not land in
        // the store and its slot must be None.
        let (slots, _) = map_shards_with_hooks(20, 1, hooks, |i| {
            if i == 4 {
                token.cancel();
            }
            i
        });
        assert!(slots[0].is_none(), "torn shard must not produce a slot");
        assert!(store.lock().unwrap().is_empty(), "torn shard was persisted");
    }

    #[test]
    fn cancelled_campaign_stops_claiming_units() {
        // A pre-cancelled token: no unit is ever claimed.
        let token = obs::CancelToken::new();
        token.cancel();
        let hooks: UnitHooks<'_, usize> = UnitHooks {
            cancel: Some(&token),
            ..UnitHooks::none()
        };
        let (slots, report) = map_indexed_with_hooks(20, 2, hooks, |i| i);
        assert!(slots.iter().all(Option::is_none));
        assert_eq!(report.resumed_units, 0);

        // Cancelling mid-run: the claiming worker stops at the flag, so
        // some prefix of units completes and the rest stay None.
        let token = obs::CancelToken::new();
        let hooks = UnitHooks {
            cancel: Some(&token),
            ..UnitHooks::none()
        };
        let (slots, _) = map_indexed_with_hooks(20, 1, hooks, |i| {
            if i == 4 {
                token.cancel();
            }
            i
        });
        let done = slots.iter().filter(|s| s.is_some()).count();
        assert!(done >= 5, "units before the cancel completed: {done}");
        assert!(done < 20, "cancellation must stop the campaign");
        // Completed units are intact and in order.
        for (i, s) in slots.iter().enumerate().take(done) {
            assert_eq!(*s, Some(i));
        }
    }

    #[test]
    fn speedup_is_serial_over_wall() {
        let r = CampaignReport {
            units: 4,
            workers: 2,
            wall: Duration::from_millis(500),
            serial_estimate: Duration::from_millis(1500),
            ..CampaignReport::empty()
        };
        assert!((r.speedup() - 3.0).abs() < 1e-9);
        assert!(r.banner_line().contains("3.00x"));
    }

    #[test]
    fn report_tracks_worker_balance_and_unit_times() {
        let (_, report) = map_indexed_with_workers(40, 4, |i| i);
        assert_eq!(report.per_worker_units.iter().sum::<usize>(), 40);
        assert_eq!(report.unit_seconds.len(), 40);
        assert!(report.unit_seconds.iter().all(|&s| s >= 0.0));

        let mut total = CampaignReport::empty();
        total.absorb(&report);
        total.absorb(&report);
        assert_eq!(total.units, 80);
        assert_eq!(total.unit_seconds.len(), 80);
        assert_eq!(
            total.per_worker_units.iter().sum::<usize>(),
            80,
            "steal counts add slot-wise"
        );

        let mut m = obs::MetricsRegistry::new();
        total.export(&mut m);
        assert_eq!(m.counter("campaign.units"), Some(80));
        assert_eq!(m.get_histogram("campaign.unit_seconds").unwrap().count(), 80);
        // Everything the report exports is scheduling/timing — excluded
        // from determinism fingerprints by the naming convention.
        assert_eq!(m.deterministic_fingerprint(), "");
    }

    /// The headline determinism regression: a campaign on one worker and
    /// on many workers produces byte-identical per-chip `(perf, power)`
    /// vectors from the same seed.
    #[test]
    fn parallel_grid_is_bit_identical_to_serial() {
        let pop = ChipPopulation::generate(
            TechNode::N32,
            VariationCorner::Severe.params(),
            3,
            424,
        );
        let chips: Vec<&ChipModel> = pop.chips().iter().collect();
        let schemes = [Scheme::no_refresh_lru(), Scheme::rsp_fifo()];
        let eval = Evaluator::new(EvalConfig {
            benchmarks: vec![SpecBenchmark::Gzip, SpecBenchmark::Mcf],
            ..EvalConfig::quick()
        });
        let ideal = eval.run_ideal(4);

        let serial = evaluate_grid_with_workers(&eval, &chips, &schemes, &ideal, 1);
        let parallel = evaluate_grid_with_workers(&eval, &chips, &schemes, &ideal, 4);
        // Bit-identical, not approximately equal: compare the raw f64s.
        assert_eq!(serial.grid, parallel.grid);

        // And identical to the plain serial nested loop over evaluate_chip.
        for (s, &scheme) in schemes.iter().enumerate() {
            for (c, chip) in chips.iter().enumerate() {
                let u = parallel.grid[s][c];
                assert_eq!(
                    (u.perf, u.power),
                    eval.evaluate_chip(chip, scheme, &ideal),
                    "scheme {s} chip {c}"
                );
            }
        }

        // The exported result metrics are bit-identical too — the
        // manifest-level determinism contract.
        let mut ms = obs::MetricsRegistry::new();
        let mut mp = obs::MetricsRegistry::new();
        let labels: Vec<String> = schemes.iter().map(|s| s.to_string()).collect();
        serial.export(&mut ms, &labels);
        parallel.export(&mut mp, &labels);
        assert_eq!(ms.deterministic_fingerprint(), mp.deterministic_fingerprint());
    }

    #[test]
    fn population_generation_is_worker_count_invariant() {
        let serial = ChipPopulation::generate_with_workers(
            TechNode::N32,
            VariationCorner::Typical.params(),
            6,
            77,
            1,
        );
        let parallel = ChipPopulation::generate_with_workers(
            TechNode::N32,
            VariationCorner::Typical.params(),
            6,
            77,
            4,
        );
        for (a, b) in serial.chips().iter().zip(parallel.chips()) {
            assert_eq!(a.retention_times(), b.retention_times());
            assert_eq!(a.index(), b.index());
        }
    }
}
