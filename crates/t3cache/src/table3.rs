//! Table 3: detailed per-node comparison of the three cache designs.
//!
//! For each technology node the paper tabulates, for (a) the ideal 6T
//! design with no variation, (b) the median 1X-6T chip under typical
//! variation, and (c) the median 3T1D chip under typical variation with
//! the global refresh scheme: access time, BIPS, mean and full dynamic
//! power, leakage power, and (for 3T1D) the cache retention time.

use crate::chip::{ChipModel, ChipPopulation};
use crate::evaluate::Evaluator;
use cachesim::{CacheConfig, DataCache, Scheme};
use vlsi::cell6t::CellSize;
use vlsi::leakage;
use vlsi::power::{full_dynamic_power, MemKind};
use vlsi::stats::median;
use vlsi::tech::TechNode;
use vlsi::units::{Power, Time};
use vlsi::variation::VariationCorner;

/// Which of the three Table 3 designs a row describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Design {
    /// Ideal 6T SRAM, no variation.
    Ideal6t,
    /// Median 1X-6T chip under typical variation (frequency-limited).
    Median6t1x,
    /// Median 3T1D chip under typical variation, global refresh scheme.
    Median3t1d,
}

impl std::fmt::Display for Design {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Design::Ideal6t => f.write_str("ideal 6T"),
            Design::Median6t1x => f.write_str("1X 6T (median chip)"),
            Design::Median3t1d => f.write_str("3T1D (median chip)"),
        }
    }
}

/// One row of Table 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table3Row {
    /// Technology node.
    pub node: TechNode,
    /// The design.
    pub design: Design,
    /// Array access time (6T designs) — for 3T1D the access speed matches
    /// the ideal 6T by construction.
    pub access_time: Time,
    /// Cache retention time (3T1D only).
    pub retention: Option<Time>,
    /// Harmonic-mean BIPS across the eight benchmarks.
    pub bips: f64,
    /// Mean dynamic power over the suite (includes refresh for 3T1D).
    pub mean_dynamic: Power,
    /// Full (all-ports-every-cycle) dynamic power bound.
    pub full_dynamic: Power,
    /// Cache leakage power.
    pub leakage: Power,
}

/// Computes the three Table 3 rows for a node.
///
/// `population` chips are sampled under typical variation to find the
/// median 6T and 3T1D chips; `eval` controls the performance simulations.
pub fn table3_rows(node: TechNode, eval: &Evaluator, population: u32, seed: u64) -> [Table3Row; 3] {
    assert_eq!(eval.config().node, node, "evaluator node mismatch");
    let pop = ChipPopulation::generate(node, VariationCorner::Typical.params(), population, seed);
    let cells = vlsi::ArrayLayout::PAPER_L1D.total_cells();

    // --- Ideal 6T ---------------------------------------------------------
    let ideal_suite = eval.run_ideal(4);
    let ideal_row = Table3Row {
        node,
        design: Design::Ideal6t,
        access_time: node.sram_access_nominal(),
        retention: None,
        bips: ideal_suite.hm_bips(1.0),
        mean_dynamic: ideal_suite.mean_dynamic_power(MemKind::Sram6t),
        full_dynamic: full_dynamic_power(node, MemKind::Sram6t),
        leakage: leakage::golden_cache_leakage_6t(node, cells),
    };

    // --- Median 1X 6T chip -------------------------------------------------
    // Median by frequency multiplier; same IPC at a scaled clock.
    let mut freqs: Vec<f64> = pop
        .chips()
        .iter()
        .map(|c| c.frequency_multiplier_6t(CellSize::X1))
        .collect();
    freqs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let freq_mult = median(&freqs);
    let leak_vals: Vec<f64> = pop.chips().iter().map(|c| c.leakage_6t().value()).collect();
    let row_6t = Table3Row {
        node,
        design: Design::Median6t1x,
        access_time: Time::new(node.sram_access_nominal().value() / freq_mult),
        retention: None,
        bips: ideal_suite.hm_bips(freq_mult),
        // Same switched capacitance at a lower clock: power scales with f.
        mean_dynamic: ideal_suite.mean_dynamic_power(MemKind::Sram6t) * freq_mult,
        full_dynamic: full_dynamic_power(node, MemKind::Sram6t) * freq_mult,
        leakage: Power::new(median(&leak_vals)),
    };

    // --- Median 3T1D chip, global refresh ----------------------------------
    let cfg = CacheConfig::paper(Scheme::global());
    let feasible: Vec<&ChipModel> = pop
        .chips()
        .iter()
        .filter(|c| DataCache::global_scheme_feasible(c.retention_profile(), &cfg))
        .collect();
    assert!(
        !feasible.is_empty(),
        "no typical-variation chip survives the global scheme"
    );
    let mut by_ret: Vec<&&ChipModel> = feasible.iter().collect();
    by_ret.sort_by(|a, b| {
        a.cache_retention()
            .partial_cmp(&b.cache_retention())
            .expect("finite")
    });
    let median_chip = by_ret[by_ret.len() / 2];
    let t3_suite = eval.run_scheme(median_chip.retention_profile(), Scheme::global(), 4);
    let leak3_vals: Vec<f64> = pop.chips().iter().map(|c| c.leakage_3t1d().value()).collect();
    let row_3t = Table3Row {
        node,
        design: Design::Median3t1d,
        access_time: node.sram_access_nominal(),
        retention: Some(median_chip.cache_retention()),
        bips: t3_suite.hm_bips(1.0),
        mean_dynamic: t3_suite.mean_dynamic_power(MemKind::Dram3t1d),
        full_dynamic: full_dynamic_power(node, MemKind::Dram3t1d),
        leakage: Power::new(median(&leak3_vals)),
    };

    [ideal_row, row_6t, row_3t]
}

/// The paper's headline claim from Table 3: total cache power saving of
/// the 3T1D design relative to the ideal 6T (≈64 % at the typical corner).
pub fn cache_power_saving(rows: &[Table3Row; 3]) -> f64 {
    let total = |r: &Table3Row| r.mean_dynamic.value() + r.leakage.value();
    1.0 - total(&rows[2]) / total(&rows[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::EvalConfig;
    use workloads::SpecBenchmark;

    fn quick_rows(node: TechNode) -> [Table3Row; 3] {
        let eval = Evaluator::new(EvalConfig {
            node,
            benchmarks: vec![SpecBenchmark::Gzip, SpecBenchmark::Mesa],
            instructions: 30_000,
            warmup: 15_000,
            seed: 5,
            ..EvalConfig::default()
        });
        table3_rows(node, &eval, 10, 77)
    }

    #[test]
    fn rows_have_expected_orderings() {
        let rows = quick_rows(TechNode::N32);
        let [ideal, t6, t3] = &rows;
        // 6T median chip is slower; 3T1D runs at the nominal clock.
        assert!(t6.bips < ideal.bips);
        assert!(t3.bips <= ideal.bips * 1.001);
        assert!(t3.bips > t6.bips, "one generation of perf recovered");
        // 3T1D dynamic power is higher (refresh), leakage far lower.
        assert!(t3.mean_dynamic.value() > ideal.mean_dynamic.value() * 0.9);
        assert!(t3.leakage.value() < ideal.leakage.value() * 0.6);
        // Access times: median 6T slower than nominal.
        assert!(t6.access_time > ideal.access_time);
        assert_eq!(t3.access_time, ideal.access_time);
        // Retention reported only for 3T1D.
        assert!(t3.retention.is_some());
        assert!(ideal.retention.is_none());
    }

    #[test]
    fn median_retention_in_paper_band_at_32nm() {
        let rows = quick_rows(TechNode::N32);
        let ret = rows[2].retention.unwrap();
        // Table 3: 1900 ns at 32 nm; generous band for 10 chips.
        assert!(
            ret.ns() > 900.0 && ret.ns() < 3100.0,
            "median retention {} ns",
            ret.ns()
        );
    }

    #[test]
    fn power_saving_band() {
        let rows = quick_rows(TechNode::N32);
        let saving = cache_power_saving(&rows);
        // Paper: ≈64 % total cache power saving (typical chips). Our
        // leakage model runs slightly leaner at 32 nm; allow a wide band.
        assert!(saving > 0.4 && saving < 0.88, "saving {saving}");
    }

    #[test]
    fn bips_scale_with_node_frequency() {
        let r32 = quick_rows(TechNode::N32);
        let r65 = quick_rows(TechNode::N65);
        assert!(r32[0].bips > r65[0].bips);
    }
}
