//! The §5 sensitivity study: performance vs retention-time µ and σ/µ.
//!
//! The paper sweeps the mean retention µ (2 K–30 K cycles) and the
//! within-die coefficient of variation σ/µ (5–35 %) of the per-line
//! retention distribution — ignoring die-to-die effects — and plots the
//! resulting performance surface for the three representative line-level
//! schemes (Fig. 12). Dead lines (retention below one counter step) are
//! the dominant performance limiter at high σ/µ.

use crate::evaluate::{Evaluator, SuiteResult};
use cachesim::{CounterSpec, RetentionProfile, Scheme};
use vlsi::math::sample_normal;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Builds a synthetic per-line retention profile with the given mean (in
/// cycles) and coefficient of variation, Gaussian truncated at zero —
/// the §5 abstraction of within-die variation.
///
/// # Panics
///
/// Panics if `mu_cycles` is zero or `sigma_over_mu` is negative.
pub fn synthetic_profile(
    mu_cycles: u64,
    sigma_over_mu: f64,
    lines: u32,
    seed: u64,
) -> RetentionProfile {
    assert!(mu_cycles > 0, "mean retention must be positive");
    assert!(sigma_over_mu >= 0.0, "sigma/mu must be non-negative");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5e45);
    let sigma = mu_cycles as f64 * sigma_over_mu;
    let per_line = (0..lines)
        .map(|_| sample_normal(&mut rng, mu_cycles as f64, sigma).max(0.0) as u64)
        .collect();
    RetentionProfile::PerLine(per_line)
}

/// Locates a *real design* on the µ–σ/µ surface: samples chips at a node
/// and variation corner, applies the supply-voltage retention factor, and
/// returns `(µ in cycles, σ/µ)` of the per-line retention distribution —
/// the Fig. 12 "design point" annotations (e.g. point 2 ≈ 45 nm typical at
/// 1.1 V; point 4 ≈ 32 nm severe at 1.1 V).
pub fn design_point(
    node: vlsi::TechNode,
    params: &vlsi::VariationParams,
    vdd: vlsi::Voltage,
    chips: u32,
    seed: u64,
) -> (u64, f64) {
    use vlsi::cell3t1d::retention_vdd_factor;
    use vlsi::montecarlo::ChipFactory;
    use vlsi::stats::Summary;

    let factory = ChipFactory::new(node, *params, seed);
    let factor = retention_vdd_factor(node, vdd);
    let clock = node.chip_frequency().value();
    let mut s = Summary::new();
    for i in 0..chips {
        for t in factory.chip(i).line_retentions() {
            s.push(t.value() * factor * clock);
        }
    }
    (s.mean().max(0.0) as u64, s.cv())
}

/// One point of the µ–σ/µ surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensitivityPoint {
    /// Mean retention in cycles.
    pub mu_cycles: u64,
    /// Coefficient of variation of retention.
    pub sigma_over_mu: f64,
    /// Normalized performance (vs ideal 6T), averaged over sample chips.
    pub performance: f64,
    /// Mean dead-line fraction of the sampled chips.
    pub dead_fraction: f64,
}

/// The µ–σ/µ sweep driver.
#[derive(Debug, Clone)]
pub struct SensitivitySweep {
    /// Mean retentions to sweep (cycles).
    pub mus: Vec<u64>,
    /// σ/µ ratios to sweep.
    pub ratios: Vec<f64>,
    /// Synthetic chips sampled per grid point.
    pub chips_per_point: u32,
    /// Base seed.
    pub seed: u64,
}

impl SensitivitySweep {
    /// The paper's grid: µ ∈ 2K–30K cycles, σ/µ ∈ 5–35 %.
    pub fn paper_grid() -> Self {
        Self {
            mus: vec![2_000, 6_000, 10_000, 14_000, 18_000, 22_000, 26_000, 30_000],
            ratios: vec![0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35],
            chips_per_point: 3,
            seed: 31,
        }
    }

    /// A coarse grid for tests.
    pub fn coarse() -> Self {
        Self {
            mus: vec![2_000, 14_000, 30_000],
            ratios: vec![0.05, 0.35],
            chips_per_point: 1,
            seed: 31,
        }
    }

    /// Runs the sweep for one scheme, normalizing each point against the
    /// given ideal baseline. Points are returned in row-major order
    /// (µ outer, σ/µ inner).
    pub fn run(
        &self,
        eval: &Evaluator,
        scheme: Scheme,
        ideal: &SuiteResult,
    ) -> Vec<SensitivityPoint> {
        self.run_timed(eval, scheme, ideal).0
    }

    /// [`SensitivitySweep::run`] with the campaign timing report.
    ///
    /// Each grid point is one independent work unit — its synthetic
    /// profiles are seeded from `(seed, µ, σ/µ, chip)` alone — fanned
    /// across the [`crate::campaign`] worker pool; the returned points are
    /// in the same row-major order as a serial double loop, bit-identical.
    pub fn run_timed(
        &self,
        eval: &Evaluator,
        scheme: Scheme,
        ideal: &SuiteResult,
    ) -> (Vec<SensitivityPoint>, crate::campaign::CampaignReport) {
        // One counter design across the surface: the standard 1024-cycle
        // step (so the dead-line threshold is a fixed physical quantity —
        // the source of the σ/µ > 25 % cliff) with enough bits to cover
        // the largest µ without clamping.
        let counter = CounterSpec {
            step_cycles: 1024,
            bits: 5,
        };
        eval.warm_traces();
        let n_ratios = self.ratios.len();
        crate::campaign::map_indexed(self.mus.len() * n_ratios, |i| {
            let mu = self.mus[i / n_ratios];
            let ratio = self.ratios[i % n_ratios];
            let mut perf_sum = 0.0;
            let mut dead_sum = 0.0;
            for c in 0..self.chips_per_point {
                let profile = synthetic_profile(
                    mu,
                    ratio,
                    1024,
                    self.seed ^ (mu << 8) ^ ((ratio * 1000.0) as u64) ^ (c as u64) << 40,
                );
                dead_sum += profile.dead_fraction(&counter);
                let suite = eval.run_scheme_custom(&profile, scheme, 4, counter);
                perf_sum += suite.normalized_performance(ideal, 1.0);
            }
            SensitivityPoint {
                mu_cycles: mu,
                sigma_over_mu: ratio,
                performance: perf_sum / self.chips_per_point as f64,
                dead_fraction: dead_sum / self.chips_per_point as f64,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::EvalConfig;
    use workloads::SpecBenchmark;

    #[test]
    fn synthetic_profile_statistics() {
        let p = synthetic_profile(10_000, 0.2, 1024, 1);
        if let RetentionProfile::PerLine(v) = &p {
            let mean: f64 = v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64;
            assert!((mean - 10_000.0).abs() < 400.0, "mean {mean}");
            let var: f64 = v
                .iter()
                .map(|&x| (x as f64 - mean).powi(2))
                .sum::<f64>()
                / v.len() as f64;
            let cv = var.sqrt() / mean;
            assert!((cv - 0.2).abs() < 0.03, "cv {cv}");
        } else {
            panic!("expected per-line profile");
        }
    }

    #[test]
    fn high_cv_creates_dead_lines() {
        // With the fixed 1024-cycle dead threshold, σ/µ = 35 % at a small
        // µ puts a meaningful tail below one counter step, while σ/µ = 5 %
        // leaves every line alive. This is the Fig. 12 cliff mechanism.
        let counter = CounterSpec {
            step_cycles: 1024,
            bits: 5,
        };
        let p = synthetic_profile(2_500, 0.35, 1024, 2);
        assert!(p.dead_fraction(&counter) > 0.02);
        let p = synthetic_profile(2_500, 0.05, 1024, 3);
        assert_eq!(p.dead_fraction(&counter), 0.0);
    }

    #[test]
    fn design_points_order_as_the_paper_describes() {
        use vlsi::{TechNode, VariationCorner, Voltage};
        // Point 1→2→3: scaling 65→45→32 nm at fixed voltage shrinks µ.
        let p65 = design_point(TechNode::N65, &VariationCorner::Typical.params(),
                               TechNode::N65.vdd(), 2, 9);
        let p45 = design_point(TechNode::N45, &VariationCorner::Typical.params(),
                               TechNode::N45.vdd(), 2, 9);
        let p32 = design_point(TechNode::N32, &VariationCorner::Typical.params(),
                               TechNode::N32.vdd(), 2, 9);
        assert!(p65.0 > p45.0 && p45.0 > p32.0, "{p65:?} {p45:?} {p32:?}");
        // Point 3 vs 5: lowering the rail shrinks µ further.
        let p32_low = design_point(TechNode::N32, &VariationCorner::Typical.params(),
                                   Voltage::new(0.9), 2, 9);
        assert!(p32_low.0 < p32.0);
        // Severe variation widens σ/µ (point 4 vs point 3).
        let p32_sev = design_point(TechNode::N32, &VariationCorner::Severe.params(),
                                   TechNode::N32.vdd(), 2, 9);
        assert!(p32_sev.1 > p32.1);
    }

    #[test]
    fn determinism() {
        let a = synthetic_profile(8_000, 0.25, 64, 9);
        let b = synthetic_profile(8_000, 0.25, 64, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn sweep_shows_mu_and_cv_trends() {
        let eval = Evaluator::new(EvalConfig {
            benchmarks: vec![SpecBenchmark::Gzip],
            instructions: 30_000,
            warmup: 15_000,
            ..EvalConfig::quick()
        });
        let ideal = eval.run_ideal(4);
        let sweep = SensitivitySweep::coarse();
        let pts = sweep.run(&eval, Scheme::partial_refresh_dsp(), &ideal);
        assert_eq!(pts.len(), 6);
        // Larger µ at fixed σ/µ=5% helps (first ratio of each µ row).
        let low_mu = pts[0].performance;
        let high_mu = pts[4].performance;
        assert!(
            high_mu >= low_mu - 0.02,
            "µ trend: {low_mu} vs {high_mu}"
        );
        // At µ=2K, σ/µ=35% is no better than 5 % (dead lines).
        assert!(pts[1].performance <= pts[0].performance + 0.02);
        assert!(pts[1].dead_fraction >= pts[0].dead_fraction);
    }
}
