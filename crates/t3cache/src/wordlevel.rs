//! Word-level refresh analysis — the §4.3.1 road not taken, quantified.
//!
//! The paper notes that "word-level refresh is also possible, but is not
//! studied due to the excessive hardware overheads". This module computes
//! both sides of that trade for a sampled chip: the refresh bandwidth and
//! power a word-granularity scheme would save (each word refreshed at its
//! *own* retention instead of the line's worst word), against the counter
//! hardware it would cost (one counter per word instead of per line).

use cachesim::CounterSpec;
use vlsi::montecarlo::WordRetentionMap;
use vlsi::power::refresh_energy;
use vlsi::tech::TechNode;
use vlsi::units::Power;

/// Steady-state refresh demand of a full-refresh discipline at some
/// granularity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefreshDemand {
    /// Refresh operations per microsecond across the cache.
    pub refreshes_per_us: f64,
    /// Port-blocking cycles per microsecond (at the node's clock).
    pub port_cycles_per_us: f64,
    /// Mean refresh power.
    pub power: Power,
    /// Retention-counter storage this granularity requires (bits).
    pub counter_bits: u64,
    /// Units (lines or words) that are dead at this granularity.
    pub dead_units: u64,
}

fn usable_seconds(ret_s: f64, counter: &CounterSpec, clock_hz: f64) -> Option<f64> {
    let cycles = (ret_s * clock_hz) as u64;
    let usable = counter.usable_cycles(cycles);
    if usable == 0 {
        None // dead at this counter resolution
    } else {
        Some(usable as f64 / clock_hz)
    }
}

/// Refresh demand when every *line* is refreshed at its own quantized
/// retention (the paper's line-level full refresh).
pub fn line_level_demand(map: &WordRetentionMap, counter: &CounterSpec, node: TechNode) -> RefreshDemand {
    let clock = node.chip_frequency().value();
    let mut rate_hz = 0.0;
    let mut dead = 0u64;
    for line in 0..map.lines() {
        match usable_seconds(map.line_retention(line).value(), counter, clock) {
            Some(period) => rate_hz += 1.0 / period,
            None => dead += 1,
        }
    }
    let e_line = refresh_energy(node).value();
    RefreshDemand {
        refreshes_per_us: rate_hz * 1e-6,
        port_cycles_per_us: rate_hz * 8.0 * 1e-6,
        power: Power::new(rate_hz * e_line),
        counter_bits: map.lines() as u64 * counter.bits as u64,
        dead_units: dead,
    }
}

/// Refresh demand when every *word* (and each line's tag group) is
/// refreshed at its own quantized retention.
pub fn word_level_demand(map: &WordRetentionMap, counter: &CounterSpec, node: TechNode) -> RefreshDemand {
    let clock = node.chip_frequency().value();
    let words_per_line = map.words.first().map(Vec::len).unwrap_or(0).max(1);
    let e_word = refresh_energy(node).value() / words_per_line as f64;
    let mut rate_hz = 0.0;
    let mut power = 0.0;
    let mut dead = 0u64;
    let mut units = 0u64;
    for line in 0..map.lines() {
        for &w in &map.words[line] {
            units += 1;
            match usable_seconds(w.value(), counter, clock) {
                Some(period) => {
                    rate_hz += 1.0 / period;
                    power += e_word / period;
                }
                None => dead += 1,
            }
        }
        // The tag group refreshes as one small unit.
        units += 1;
        match usable_seconds(map.tags[line].value(), counter, clock) {
            Some(period) => {
                rate_hz += 1.0 / period;
                power += e_word / period;
            }
            None => dead += 1,
        }
        let _ = units;
    }
    RefreshDemand {
        refreshes_per_us: rate_hz * 1e-6,
        // One word streams through the sense amps in a single cycle.
        port_cycles_per_us: rate_hz * 1e-6,
        power: Power::new(power),
        counter_bits: map.lines() as u64 * (words_per_line as u64 + 1) * counter.bits as u64,
        dead_units: dead,
    }
}

/// The headline comparison: `(power saving fraction, port-cycle saving
/// fraction, counter-bit multiplier)` of word-level over line-level.
pub fn word_vs_line(map: &WordRetentionMap, counter: &CounterSpec, node: TechNode) -> (f64, f64, f64) {
    let line = line_level_demand(map, counter, node);
    let word = word_level_demand(map, counter, node);
    (
        1.0 - word.power.value() / line.power.value().max(f64::MIN_POSITIVE),
        1.0 - word.port_cycles_per_us / line.port_cycles_per_us.max(f64::MIN_POSITIVE),
        word.counter_bits as f64 / line.counter_bits as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi::montecarlo::ChipFactory;
    use vlsi::variation::VariationCorner;

    fn sample_map() -> WordRetentionMap {
        let f = ChipFactory::new(TechNode::N32, VariationCorner::Typical.params(), 5);
        f.chip(0).word_retention_map(8)
    }

    #[test]
    fn word_level_savings_are_modest() {
        // The interesting (and paper-supporting) result: because worst-cell
        // statistics are logarithmic in the cell count, a 64-cell word
        // retains only ~1.3-1.6x longer than its 536-cell line — so word
        // granularity saves only a modest slice of refresh power while
        // costing 9x the counter storage. Use a counter wide enough not to
        // clamp either granularity.
        let map = sample_map();
        let counter = CounterSpec {
            step_cycles: 1024,
            bits: 6,
        };
        let (power_saving, port_saving, counter_mult) =
            word_vs_line(&map, &counter, TechNode::N32);
        assert!(
            power_saving > 0.0 && power_saving < 0.6,
            "power saving {power_saving}"
        );
        assert!(port_saving > 0.0 && port_saving < 0.6, "port saving {port_saving}");
        assert!((counter_mult - 9.0).abs() < 1e-9, "mult {counter_mult}");
    }

    #[test]
    fn narrow_counters_clamp_away_the_word_advantage() {
        // With the paper's 3-bit counters both granularities saturate at
        // 7 steps, so word-level refresh buys essentially nothing.
        let map = sample_map();
        let counter = CounterSpec::default();
        let (power_saving, _, _) = word_vs_line(&map, &counter, TechNode::N32);
        assert!(power_saving < 0.15, "clamped saving {power_saving}");
    }

    #[test]
    fn demands_are_finite_and_positive() {
        let map = sample_map();
        let counter = CounterSpec::default();
        for d in [
            line_level_demand(&map, &counter, TechNode::N32),
            word_level_demand(&map, &counter, TechNode::N32),
        ] {
            assert!(d.refreshes_per_us.is_finite() && d.refreshes_per_us > 0.0);
            assert!(d.port_cycles_per_us.is_finite() && d.port_cycles_per_us > 0.0);
            assert!(d.power.value() > 0.0);
            assert!(d.counter_bits > 0);
        }
    }

    #[test]
    fn line_demand_matches_hand_computation() {
        // Two lines with known retentions.
        let map = WordRetentionMap {
            words: vec![
                vec![vlsi::units::Time::from_us(10.0)],
                vec![vlsi::units::Time::from_us(5.0)],
            ],
            tags: vec![
                vlsi::units::Time::from_us(20.0),
                vlsi::units::Time::from_us(20.0),
            ],
        };
        let counter = CounterSpec {
            step_cycles: 4300, // 1 µs at 4.3 GHz
            bits: 5,
        };
        let d = line_level_demand(&map, &counter, TechNode::N32);
        // Usable ≈ 10 µs and 5 µs (quantization may round one step down):
        // ≈ 0.1 + 0.2 refreshes per µs, at most one step conservative.
        assert!(
            d.refreshes_per_us >= 0.29 && d.refreshes_per_us <= 0.38,
            "{}",
            d.refreshes_per_us
        );
        assert_eq!(d.dead_units, 0);
        // Port cycles are 8x the refresh rate at line granularity.
        assert!((d.port_cycles_per_us - 8.0 * d.refreshes_per_us).abs() < 1e-9);
    }

    #[test]
    fn dead_words_are_counted_not_refreshed() {
        let map = WordRetentionMap {
            words: vec![vec![
                vlsi::units::Time::ZERO,
                vlsi::units::Time::from_us(10.0),
            ]],
            tags: vec![vlsi::units::Time::from_us(10.0)],
        };
        let counter = CounterSpec::default();
        let d = word_level_demand(&map, &counter, TechNode::N32);
        assert_eq!(d.dead_units, 1);
        assert!(d.refreshes_per_us > 0.0);
    }
}
