//! Golden regression pinning the Figure 9 scheme-comparison summary
//! statistics at a fixed seed. The whole stack sits under these numbers —
//! Monte-Carlo sampling, retention modelling, the cache simulator, the
//! pipeline model and the campaign merge — so any behavioural drift
//! anywhere shows up here as more than the 1e-9 tolerance.
//!
//! If a deliberate model change moves these values, re-derive them with
//! `cargo test -p t3cache --test golden_fig09 -- --nocapture` (the test
//! prints the measured table) and update the constants in the same commit
//! that changes the model.

use cachesim::Scheme;
use t3cache::campaign::evaluate_grid_with_workers;
use t3cache::chip::{ChipGrade, ChipModel, ChipPopulation};
use t3cache::evaluate::{EvalConfig, Evaluator};
use vlsi::tech::TechNode;
use vlsi::variation::VariationCorner;
use workloads::SpecBenchmark;

const TOLERANCE: f64 = 1e-9;

/// (scheme display name, mean IPC loss across good/median/bad,
/// mean refresh-event count per chip) at seed 20 244, 32 nm severe,
/// gzip+mcf quick config.
const GOLDEN: &[(&str, f64, f64)] = &[
    ("no-refresh/LRU", 0.040494719017192, 0.0),
    ("no-refresh/DSP", 0.021183032068239016, 0.0),
    ("partial-refresh(6000)/LRU", 0.02668728695646431, 4217.666666666667),
    ("partial-refresh(6000)/DSP", 0.02003646168030382, 2023.6666666666667),
    ("full-refresh/LRU", 0.013896784691151298, 17527.0),
    ("full-refresh/DSP", 0.0061313069761094185, 17386.0),
    ("RSP-FIFO", 0.012679554464636533, 6142.333333333333),
    ("RSP-LRU", 0.0142063641402748, 9692.0),
];

#[test]
fn fig09_summary_stats_are_pinned() {
    let pop = ChipPopulation::generate(TechNode::N32, VariationCorner::Severe.params(), 8, 20_244);
    let exemplars: Vec<&ChipModel> = [ChipGrade::Good, ChipGrade::Median, ChipGrade::Bad]
        .iter()
        .map(|&g| pop.select(g))
        .collect();
    let schemes = Scheme::figure9_schemes();
    let eval = Evaluator::new(EvalConfig {
        benchmarks: vec![SpecBenchmark::Gzip, SpecBenchmark::Mcf],
        ..EvalConfig::quick()
    });
    let ideal = eval.run_ideal(4);
    let grid = evaluate_grid_with_workers(&eval, &exemplars, &schemes, &ideal, 2);

    let mut measured = Vec::new();
    for (s, scheme) in schemes.iter().enumerate() {
        let units = grid.per_chip(s);
        let ipc_loss =
            units.iter().map(|u| 1.0 - u.perf).sum::<f64>() / units.len() as f64;
        let refreshes = units
            .iter()
            .map(|u| (u.cache.refreshes + u.cache.line_moves) as f64)
            .sum::<f64>()
            / units.len() as f64;
        println!("(\"{scheme}\", {ipc_loss:?}, {refreshes:?}),");
        measured.push((scheme.to_string(), ipc_loss, refreshes));
    }

    assert_eq!(measured.len(), GOLDEN.len(), "scheme set changed");
    for ((name, ipc_loss, refreshes), (g_name, g_ipc, g_ref)) in
        measured.iter().zip(GOLDEN)
    {
        assert_eq!(name, g_name, "scheme order changed");
        assert!(
            (ipc_loss - g_ipc).abs() < TOLERANCE,
            "{name}: IPC-loss mean drifted: measured {ipc_loss:.12}, pinned {g_ipc:.12}"
        );
        assert!(
            (refreshes - g_ref).abs() < TOLERANCE,
            "{name}: refresh-event mean drifted: measured {refreshes:.12}, pinned {g_ref:.12}"
        );
    }
}
