//! The PR's headline determinism contract, end to end: an identical
//! campaign on one worker and on eight workers must produce bit-identical
//! merged results AND bit-identical manifest metrics — scheduling may only
//! change the timing metrics, which the fingerprint excludes by naming
//! convention.

use cachesim::Scheme;
use t3cache::campaign::{evaluate_grid_with_workers, map_indexed_with_workers};
use t3cache::chip::{ChipModel, ChipPopulation};
use t3cache::evaluate::{EvalConfig, Evaluator};
use vlsi::tech::TechNode;
use vlsi::variation::VariationCorner;
use workloads::SpecBenchmark;

fn small_campaign(workers: usize) -> (t3cache::campaign::CampaignResult, Vec<String>, Evaluator) {
    let pop = ChipPopulation::generate(TechNode::N32, VariationCorner::Severe.params(), 4, 20_244);
    let chips: Vec<&ChipModel> = pop.chips().iter().collect();
    let schemes = [
        Scheme::no_refresh_lru(),
        Scheme::partial_refresh_dsp(),
        Scheme::rsp_fifo(),
    ];
    let eval = Evaluator::new(EvalConfig {
        benchmarks: vec![SpecBenchmark::Gzip, SpecBenchmark::Mcf],
        ..EvalConfig::quick()
    });
    let ideal = eval.run_ideal(4);
    let result = evaluate_grid_with_workers(&eval, &chips, &schemes, &ideal, workers);
    let labels = schemes.iter().map(|s| s.to_string()).collect();
    (result, labels, eval)
}

#[test]
fn campaign_one_vs_eight_workers_is_bit_identical() {
    let (serial, labels, _) = small_campaign(1);
    let (parallel, _, _) = small_campaign(8);

    // Merged per-unit results: bit-exact f64 equality, not tolerance.
    assert_eq!(serial.grid.len(), parallel.grid.len());
    for (s, (row_s, row_p)) in serial.grid.iter().zip(&parallel.grid).enumerate() {
        for (c, (a, b)) in row_s.iter().zip(row_p).enumerate() {
            assert_eq!(
                a.perf.to_bits(),
                b.perf.to_bits(),
                "perf diverged at scheme {s} chip {c}"
            );
            assert_eq!(
                a.power.to_bits(),
                b.power.to_bits(),
                "power diverged at scheme {s} chip {c}"
            );
            assert_eq!(a.cache, b.cache, "cache counters diverged at {s}/{c}");
            assert_eq!(a.sim, b.sim, "pipeline counters diverged at {s}/{c}");
        }
    }

    // The scheduling telemetry is the one thing allowed to differ.
    assert_eq!(serial.report.workers, 1);
    assert_eq!(parallel.report.workers, 8.min(serial.report.units));

    // Manifest-level contract: write both runs as manifests, read them
    // back, and compare the result-metric fingerprints byte for byte.
    let dir = std::env::temp_dir().join(format!("pv3t1d_determinism_{}", std::process::id()));
    let mut fingerprints = Vec::new();
    for (tag, result) in [("w1", &serial), ("w8", &parallel)] {
        let mut manifest = obs::RunManifest::new("determinism");
        manifest.seed = Some(20_244);
        manifest.workers = result.report.workers as u64;
        result.export(&mut manifest.metrics, &labels);
        result.report.export(&mut manifest.metrics);
        let path = dir.join(format!("{tag}.json"));
        manifest.write_to(&path).unwrap();
        let back = obs::RunManifest::read_from(&path).unwrap();
        fingerprints.push(back.deterministic_fingerprint());
    }
    assert!(!fingerprints[0].is_empty(), "fingerprint must cover result metrics");
    assert_eq!(
        fingerprints[0], fingerprints[1],
        "manifest result metrics must not depend on the worker count"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn tracing_cannot_change_results_and_sees_the_whole_stack() {
    // Capture-on vs capture-off runs of the same campaign must fingerprint
    // bit-identically: tracing is observation only.
    let fingerprint = |result: &t3cache::campaign::CampaignResult, labels: &[String]| {
        let mut manifest = obs::RunManifest::new("determinism");
        manifest.seed = Some(20_244);
        result.export(&mut manifest.metrics, labels);
        manifest.deterministic_fingerprint()
    };

    let (base, labels, _) = small_campaign(2);
    let fp_off = fingerprint(&base, &labels);

    obs::trace::enable(1 << 16);
    let (traced, labels_on, _) = small_campaign(2);
    obs::trace::disable();
    let doc = obs::trace::export();
    obs::trace::clear();
    let fp_on = fingerprint(&traced, &labels_on);
    assert_eq!(
        fp_off, fp_on,
        "enabling the tracer must not perturb campaign results"
    );

    // The one capture must hold events from the whole stack: campaign
    // orchestration (t3cache), the pipeline (uarch), and cache domain
    // events (cachesim) — plus at least two distinct domain event types.
    use std::collections::BTreeSet;
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    let cats: BTreeSet<&str> = events
        .iter()
        .filter_map(|e| e.get("cat").and_then(obs::Json::as_str))
        .collect();
    for cat in ["t3cache", "uarch", "cachesim"] {
        assert!(cats.contains(cat), "no {cat} events in {cats:?}");
    }
    let domain: BTreeSet<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(obs::Json::as_str))
        .filter(|n| {
            [
                "refresh.issued",
                "refresh.completed",
                "line.dead",
                "eviction.retention",
                "stall.run",
                "port.retry",
                "replay.flush",
            ]
            .contains(n)
        })
        .collect();
    assert!(
        domain.len() >= 2,
        "expected at least two domain event types, got {domain:?}"
    );
}

#[test]
fn map_indexed_merge_order_is_worker_count_invariant() {
    // The raw engine primitive behind every campaign: results land in
    // submission order regardless of which worker computed them.
    for workers in [2, 3, 8, 16] {
        let (serial, _) = map_indexed_with_workers(37, 1, |i| (i, i * i));
        let (parallel, report) = map_indexed_with_workers(37, workers, |i| (i, i * i));
        assert_eq!(serial, parallel, "worker count {workers} reordered results");
        assert_eq!(report.per_worker_units.iter().sum::<usize>(), 37);
    }
}
