//! # orchestrator — the experiment DAG runner behind the `pv3t1d` CLI
//!
//! Reproducing the paper end-to-end means running a dozen interdependent
//! experiments (Monte-Carlo chip campaigns, retention maps, the Fig. 6b
//! and 9–12 / Table 3 evaluations, summary reports). Before this crate,
//! each one was a standalone binary and "reproduce the paper" was a
//! shell script of serial invocations that recomputed everything on
//! every run. This crate turns that into:
//!
//! * [`spec`] — declarative **scenario specs** (`scenarios/*.json`,
//!   parsed with the workspace's zero-dependency [`obs::Json`]): stages,
//!   kind-specific params, and data edges between them;
//! * [`sched`] — a **DAG scheduler** that runs independent stages
//!   concurrently, isolates per-stage failures (siblings finish, the run
//!   manifest records the error) and enforces per-stage wall-clock
//!   budgets;
//! * [`cas`] — a **content-addressed artifact store** under
//!   `results/cas/`, keyed by a fingerprint of (stage kind, params,
//!   scale, input artifact digests), with corruption detected on read
//!   and treated as a cache miss;
//! * [`stage`] — the stage kinds themselves, thin JSON adapters over
//!   the library stage functions in [`bench_harness::figures`] and
//!   [`t3cache`];
//! * [`bench`] — the pinned micro-benchmark suite behind `pv3t1d bench`
//!   and the `BENCH_<label>.json` baseline / `--compare` regression
//!   machinery;
//! * [`report`] — the `pv3t1d report` markdown renderer for run
//!   manifests and `--trace` captures.
//!
//! The determinism contract extends the workspace-wide one: a second
//! `pv3t1d run` of an unchanged scenario executes **zero** stages (every
//! lookup hits) and reproduces the run manifest's `results` section and
//! fingerprint bit-for-bit. CI pins exactly that.

pub mod bench;
pub mod cas;
pub mod flight;
pub mod hash;
pub mod report;
pub mod sched;
pub mod spec;
pub mod stage;

pub use bench::{compare, BenchReport, CompareLine, Direction};
pub use cas::{
    checkpoint_base, unit_key, ArtifactStore, CasEntry, CasListing, GcReport, StageCheckpoint,
};
pub use flight::FlightTable;
pub use hash::content_hash;
pub use sched::{
    plan_scenario, run_scenario, stage_key, PlanEntry, RunOptions, RunSummary, StageError,
    StageErrorKind, StageResult, StageStatus,
};
pub use spec::{Scenario, SpecError, StageSpec};
pub use stage::effective_params;
