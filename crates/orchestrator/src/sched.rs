//! The DAG scheduler: runs a [`Scenario`]'s stages in dependency order,
//! concurrently where the graph allows, with per-stage failure isolation
//! and wall-clock timeouts, reading and writing the content-addressed
//! [`ArtifactStore`].
//!
//! # Execution model
//!
//! Each stage runs on its own OS thread under
//! [`std::panic::catch_unwind`], reporting back over an mpsc channel.
//! The scheduler thread owns all state; it launches ready stages up to
//! the `jobs` cap, then blocks in [`mpsc::Receiver::recv_timeout`] with
//! the deadline of the *earliest-expiring* running stage:
//!
//! * a completed stage stores its payload in the CAS and unlocks its
//!   dependents;
//! * a failed stage (error **or panic**) is recorded and its transitive
//!   dependents are marked `Skipped` — siblings keep running;
//! * an overdue stage is marked `TimedOut` and abandoned: its thread
//!   keeps running detached, but its eventual result is dropped (the
//!   stage index goes into a cancelled set) and is **not** written to
//!   the cache.
//!
//! # Caching and determinism
//!
//! A stage's cache key ([`stage_key`]) fingerprints its kind, canonical
//! params, run scale, and the artifact digests of its inputs — so a hit
//! is only possible when the entire upstream cone is byte-identical.
//! The [`RunSummary`]'s `results` section (and the fingerprint derived
//! from it) covers exactly the deterministic facts: stage → key →
//! artifact digest → status. Whether a payload came from the cache or
//! was recomputed lives in the separate `execution` section, which is
//! why a fully-cached rerun reproduces the fingerprint bit-for-bit.

use crate::cas::{ArtifactStore, StageCheckpoint};
use crate::flight::FlightTable;
use crate::hash::content_hash;
use crate::spec::{scale_to_json, Scenario, SpecError};
use crate::stage::{self, StageCtx, STAGE_SCHEMA};
use bench_harness::RunScale;
use obs::{CancelToken, EventBus, Json, MetricsRegistry};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Run-manifest schema version.
pub const RUN_SCHEMA: u64 = 1;

/// Knobs for one scheduler invocation.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Maximum concurrently-running stages. Stages fan their own Monte-
    /// Carlo campaigns across the worker pool already, so the default is
    /// a deliberately small 2 — DAG-level concurrency papers over serial
    /// sections, it does not replace kernel-level parallelism.
    pub jobs: usize,
    /// Results directory; the CAS lives in `<results_dir>/cas/`.
    pub results_dir: PathBuf,
    /// Read (and write) the artifact cache. When false every stage
    /// executes, but fresh payloads are still stored for later runs.
    pub use_cache: bool,
    /// Overrides the scenario's run scale (the CLI's `--quick`/`--full`).
    pub scale_override: Option<RunScale>,
    /// Print a progress line per completed stage.
    pub verbose: bool,
    /// Cooperative cancellation (the CLI's SIGINT/SIGTERM bridge). Once
    /// the token is set the scheduler stops launching, gives in-flight
    /// stages a short grace period to flush their checkpoints, marks the
    /// rest `Cancelled`, and returns a complete (but failed) summary.
    pub cancel: Option<CancelToken>,
    /// In-flight request coalescing across concurrent scheduler
    /// invocations (the `pv3t1d serve` daemon shares one table between
    /// all jobs): stages landing on a key already being computed wait
    /// for that leader instead of re-executing.
    pub flight: Option<Arc<FlightTable>>,
    /// Streaming progress events: when set, the scheduler publishes one
    /// JSON event per run/stage lifecycle transition for clients tailing
    /// `GET /jobs/<id>/events`.
    pub events: Option<EventBus>,
    /// Correlation id minted by the serving layer at accept time. When
    /// set it is stamped on every published event, woven into run/stage
    /// trace-span names, carried in `obs::log` lines, and echoed in the
    /// manifest's `execution` section — never in `results`, so it cannot
    /// perturb the run fingerprint.
    pub request_id: Option<String>,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            jobs: 2,
            results_dir: PathBuf::from("results"),
            use_cache: true,
            scale_override: None,
            verbose: false,
            cancel: None,
            flight: None,
            events: None,
            request_id: None,
        }
    }
}

/// What *class* of failure a [`StageStatus::Failed`] (or a manifest
/// `errors` entry) carries — machine-readable so daemon clients can
/// distinguish a stage panic from an orderly cancellation without
/// parsing message strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageErrorKind {
    /// The stage function returned `Err`.
    Error,
    /// The stage panicked and was caught at the thread boundary.
    Panic,
    /// The stage exceeded its wall-clock budget.
    Timeout,
    /// An upstream stage failed, so this one never started.
    Skipped,
    /// The run was interrupted (signal, `DELETE /jobs/<id>`, daemon
    /// drain) before the stage could finish.
    Cancelled,
}

impl StageErrorKind {
    /// The manifest word for this kind.
    pub fn word(self) -> &'static str {
        match self {
            StageErrorKind::Error => "error",
            StageErrorKind::Panic => "panic",
            StageErrorKind::Timeout => "timeout",
            StageErrorKind::Skipped => "skipped",
            StageErrorKind::Cancelled => "cancelled",
        }
    }
}

/// A structured stage failure: what went wrong, and the preserved
/// human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageError {
    /// Failure class.
    pub kind: StageErrorKind,
    /// The stage's error or panic message.
    pub message: String,
}

impl StageError {
    /// An `Err`-returned stage failure.
    pub fn error(message: impl Into<String>) -> Self {
        Self {
            kind: StageErrorKind::Error,
            message: message.into(),
        }
    }

    /// A caught stage panic.
    pub fn panic(message: impl Into<String>) -> Self {
        Self {
            kind: StageErrorKind::Panic,
            message: message.into(),
        }
    }

    /// The manifest representation: `{"kind": …, "message": …}`.
    pub fn to_json(&self) -> Json {
        error_json(self.kind.word(), &self.message)
    }
}

impl fmt::Display for StageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            StageErrorKind::Error => write!(f, "{}", self.message),
            kind => write!(f, "{}: {}", kind.word(), self.message),
        }
    }
}

/// A structured manifest `errors` entry for statuses that carry only a
/// message (timeout / skipped / cancelled).
fn error_json(kind: &str, message: &str) -> Json {
    let mut o = Json::object();
    o.insert("kind", Json::Str(kind.to_string()));
    o.insert("message", Json::Str(message.to_string()));
    o
}

/// How one stage ended.
#[derive(Debug, Clone, PartialEq)]
pub enum StageStatus {
    /// Payload served from the artifact store.
    Cached,
    /// Executed successfully this run.
    Ran,
    /// Returned an error or panicked; the structured cause is preserved.
    Failed(StageError),
    /// Exceeded its wall-clock budget (seconds).
    TimedOut(f64),
    /// Never started because an upstream stage failed or timed out.
    Skipped(String),
    /// The run was interrupted before the stage could produce a payload.
    /// Unlike `Failed`, nothing is wrong with the stage — a rerun picks
    /// up from its checkpoints.
    Cancelled(String),
}

impl StageStatus {
    /// Whether the stage produced a payload.
    pub fn is_ok(&self) -> bool {
        matches!(self, StageStatus::Cached | StageStatus::Ran)
    }

    /// The deterministic status word used in the fingerprinted results
    /// section. `Cached` and `Ran` both map to `ok` — *how* a payload
    /// materialized is an execution detail, not a result.
    fn result_word(&self) -> &'static str {
        match self {
            StageStatus::Cached | StageStatus::Ran => "ok",
            StageStatus::Failed(_) => "failed",
            StageStatus::TimedOut(_) => "timeout",
            StageStatus::Skipped(_) => "skipped",
            StageStatus::Cancelled(_) => "cancelled",
        }
    }

    /// The progress-line tag.
    pub fn tag(&self) -> &'static str {
        match self {
            StageStatus::Cached => "cache",
            StageStatus::Ran => "run",
            StageStatus::Failed(_) => "FAIL",
            StageStatus::TimedOut(_) => "TIMEOUT",
            StageStatus::Skipped(_) => "skip",
            StageStatus::Cancelled(_) => "CANCEL",
        }
    }
}

/// One stage's outcome in a [`RunSummary`].
#[derive(Debug, Clone)]
pub struct StageResult {
    /// Stage id.
    pub id: String,
    /// Stage kind.
    pub kind: String,
    /// The cache key, when the stage got far enough to compute one
    /// (skipped stages did not).
    pub key: Option<String>,
    /// The payload digest, for ok stages.
    pub artifact: Option<String>,
    /// How the stage ended.
    pub status: StageStatus,
    /// Stage wall clock, summed over every attempt (0 for cache hits
    /// and skips).
    pub seconds: f64,
    /// Times the stage was launched (0 for cache hits and skips; > 1
    /// means the retry budget was used).
    pub attempts: u32,
}

/// The complete record of one scheduler invocation.
#[derive(Debug)]
pub struct RunSummary {
    /// Scenario name.
    pub scenario: String,
    /// The scale the run executed at.
    pub scale: RunScale,
    /// Per-stage outcomes, in topological order.
    pub stages: Vec<StageResult>,
    /// Stages served from the artifact store.
    pub cache_hits: u64,
    /// Stages that had to execute because no valid entry existed.
    pub cache_misses: u64,
    /// Stages that actually executed (== misses when caching is on).
    pub executed: u64,
    /// End-to-end wall clock.
    pub wall_seconds: f64,
    /// DAG-level concurrency used.
    pub jobs: usize,
    /// Scheduler metrics (`orchestrator.cas.hits`, …), merged into the
    /// run manifest's execution section.
    pub metrics: MetricsRegistry,
    /// The serving layer's correlation id, echoed in the manifest's
    /// `execution` section (absent for plain CLI runs).
    pub request_id: Option<String>,
}

impl RunSummary {
    /// Whether every stage produced a payload.
    pub fn ok(&self) -> bool {
        self.stages.iter().all(|s| s.status.is_ok())
    }

    /// The deterministic results section: everything about the run that
    /// must be bit-identical across reruns of the same scenario at the
    /// same scale with the same code.
    pub fn results_json(&self) -> Json {
        let mut stages = Json::object();
        for s in &self.stages {
            let mut e = Json::object();
            e.insert("kind", Json::Str(s.kind.clone()));
            e.insert("key", s.key.clone().map_or(Json::Null, Json::Str));
            e.insert("artifact", s.artifact.clone().map_or(Json::Null, Json::Str));
            e.insert("status", Json::Str(s.status.result_word().to_string()));
            stages.insert(&s.id, e);
        }
        let mut o = Json::object();
        o.insert("scenario", Json::Str(self.scenario.clone()));
        o.insert("scale", scale_to_json(self.scale));
        o.insert("stages", stages);
        o
    }

    /// The run fingerprint: content hash of the rendered results
    /// section. A fully-cached rerun must reproduce it bit-for-bit.
    pub fn fingerprint(&self) -> String {
        content_hash(self.results_json().render().as_bytes())
    }

    /// Serializes the run manifest: the fingerprinted `results` section
    /// plus non-deterministic `execution` details and per-stage
    /// `errors`. Each error is a structured `{"kind", "message"}` object
    /// ([`StageErrorKind::word`] values), so daemon clients and CI can
    /// tell a panic from a timeout from an orderly cancellation.
    pub fn to_json(&self) -> Json {
        let mut errors = Json::object();
        let mut per_stage = Json::object();
        for s in &self.stages {
            match &s.status {
                StageStatus::Failed(e) => errors.insert(&s.id, e.to_json()),
                StageStatus::TimedOut(limit) => errors.insert(
                    &s.id,
                    error_json("timeout", &format!("timed out after {limit} seconds")),
                ),
                StageStatus::Skipped(why) => errors.insert(&s.id, error_json("skipped", why)),
                StageStatus::Cancelled(why) => {
                    errors.insert(&s.id, error_json("cancelled", why));
                }
                _ => {}
            }
            let mut e = Json::object();
            let source = match s.status {
                StageStatus::Cached => "cache",
                StageStatus::Ran => "run",
                _ => "none",
            };
            e.insert("source", Json::Str(source.to_string()));
            e.insert("seconds", Json::Num(s.seconds));
            e.insert("attempts", Json::Num(f64::from(s.attempts)));
            per_stage.insert(&s.id, e);
        }
        let mut execution = Json::object();
        execution.insert("jobs", Json::Num(self.jobs as f64));
        execution.insert("wall_seconds", Json::Num(self.wall_seconds));
        execution.insert("cache_hits", Json::Num(self.cache_hits as f64));
        execution.insert("cache_misses", Json::Num(self.cache_misses as f64));
        execution.insert("executed", Json::Num(self.executed as f64));
        execution.insert("stages", per_stage);
        execution.insert("metrics", self.metrics.to_json());
        if let Some(rid) = &self.request_id {
            execution.insert("request_id", Json::Str(rid.clone()));
        }

        let mut o = Json::object();
        o.insert("schema", Json::Num(RUN_SCHEMA as f64));
        o.insert("ok", Json::Bool(self.ok()));
        o.insert("fingerprint", Json::Str(self.fingerprint()));
        o.insert("results", self.results_json());
        o.insert("errors", errors);
        o.insert("execution", execution);
        o
    }

    /// Writes the run manifest to `path`, creating parent directories.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json().render_pretty())
    }
}

/// The cache key of one stage: hash of (fingerprint schema, kind,
/// canonical *effective* params, run scale, dependency-id →
/// artifact-digest map). Two stages share a key iff nothing observable
/// about their computation differs. Params are first resolved through
/// [`crate::stage::effective_params`], which folds content-addressed
/// file inputs (the `trace_validate` kind's trace bytes) into the
/// fingerprint — so editing a trace file in place invalidates the
/// cached artifact even though the path param is unchanged.
pub fn stage_key(kind: &str, params: &Json, scale: RunScale, deps: &BTreeMap<String, String>) -> String {
    let params = crate::stage::effective_params(kind, params);
    let mut o = Json::object();
    o.insert("schema", Json::Num(STAGE_SCHEMA as f64));
    o.insert("kind", Json::Str(kind.to_string()));
    o.insert("params", params);
    o.insert("scale", scale_to_json(scale));
    let mut inputs = Json::object();
    for (id, digest) in deps {
        inputs.insert(id, Json::Str(digest.clone()));
    }
    o.insert("inputs", inputs);
    content_hash(o.render().as_bytes())
}

/// One row of [`plan_scenario`].
#[derive(Debug, Clone)]
pub struct PlanEntry {
    /// Stage id.
    pub id: String,
    /// Stage kind.
    pub kind: String,
    /// The cache key, when every upstream artifact is already cached
    /// (otherwise the key depends on digests that do not exist yet).
    pub key: Option<String>,
    /// Whether a valid artifact for `key` is in the store.
    pub cached: bool,
}

/// Computes, without executing anything, which stages of a scenario
/// would be cache hits. Keys become unknowable downstream of the first
/// miss (they depend on artifact digests that are yet to be produced).
pub fn plan_scenario(sc: &Scenario, opts: &RunOptions) -> Result<Vec<PlanEntry>, SpecError> {
    let order = sc.validate()?;
    let scale = opts.scale_override.unwrap_or(sc.scale);
    let store = ArtifactStore::new(opts.results_dir.join("cas"));
    let mut digests: HashMap<String, String> = HashMap::new();
    let mut plan = Vec::with_capacity(order.len());
    for &i in &order {
        let s = &sc.stages[i];
        let deps: Option<BTreeMap<String, String>> = s
            .deps
            .iter()
            .map(|d| digests.get(d).map(|h| (d.clone(), h.clone())))
            .collect();
        let (key, cached) = match deps {
            Some(deps) => {
                let key = stage_key(&s.kind, &s.params, scale, &deps);
                match store.get(&key) {
                    Some(entry) => {
                        digests.insert(s.id.clone(), entry.payload_hash);
                        (Some(key), true)
                    }
                    None => (Some(key), false),
                }
            }
            None => (None, false),
        };
        plan.push(PlanEntry {
            id: s.id.clone(),
            kind: s.kind.clone(),
            key,
            cached,
        });
    }
    Ok(plan)
}

/// Internal: what a worker thread reports back — stage index, launch
/// generation (so reports from abandoned attempts are recognizably
/// stale), result, attempt wall clock, and whether the result was
/// coalesced from a concurrent leader's computation.
type StageReport = (usize, u64, Result<Json, StageError>, f64, bool);

/// Internal: one in-flight stage attempt.
struct Running {
    /// Monotonic launch id; a report whose generation does not match the
    /// stage's current one is from a timed-out/retried attempt.
    generation: u64,
    launched: Instant,
    deadline: Option<Instant>,
}

/// How long the scheduler is willing to block while a cancel token could
/// flip underneath it.
const CANCEL_POLL: Duration = Duration::from_millis(100);

/// Grace period after cancellation: in-flight stages get this long to
/// notice the token, flush their unit checkpoints, and report back
/// before they are abandoned.
const CANCEL_GRACE: Duration = Duration::from_secs(2);

/// Runs a scenario to completion. Never aborts on stage failure — every
/// stage that *can* produce a payload does, and the summary records the
/// rest. Returns `Err` only for spec-level problems (invalid scenario).
///
/// Failed or timed-out attempts of stages that declare `retries` are
/// re-launched after their `backoff_ms`, up to the budget; only the
/// final failure cascades `Skipped` to dependents. Retries are purely an
/// execution policy — they never enter cache keys or the run
/// fingerprint. When [`RunOptions::cancel`] fires, the scheduler stops
/// launching, drains in-flight stages for [`CANCEL_GRACE`], marks
/// everything unfinished `Cancelled`, and still returns a complete
/// summary (so a partial manifest can be written).
pub fn run_scenario(sc: &Scenario, opts: &RunOptions) -> Result<RunSummary, SpecError> {
    let order = sc.validate()?;
    let scale = opts.scale_override.unwrap_or(sc.scale);
    let store = ArtifactStore::new(opts.results_dir.join("cas"));
    let started = Instant::now();
    let n = sc.stages.len();
    let jobs = opts.jobs.max(1);
    let _run_span = obs::trace::span_with("orchestrator", || match &opts.request_id {
        Some(rid) => format!("run_scenario:{}@{rid}", sc.name),
        None => format!("run_scenario:{}", sc.name),
    });
    // Fields every scheduler log line carries (the request id makes one
    // daemon job greppable end to end).
    let log_fields = |mut fields: Vec<(&'static str, Json)>| {
        if let Some(rid) = &opts.request_id {
            fields.push(("request_id", Json::Str(rid.clone())));
        }
        fields
    };
    if obs::log::enabled(obs::log::Level::Info) {
        obs::log::info(
            "run started",
            &log_fields(vec![
                ("scenario", Json::Str(sc.name.clone())),
                ("stages", Json::Num(sc.stages.len() as f64)),
            ]),
        );
    }

    let index_of: HashMap<&str, usize> = sc
        .stages
        .iter()
        .enumerate()
        .map(|(i, s)| (s.id.as_str(), i))
        .collect();
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut remaining: Vec<usize> = vec![0; n];
    for (i, s) in sc.stages.iter().enumerate() {
        remaining[i] = s.deps.len();
        for d in &s.deps {
            dependents[index_of[d.as_str()]].push(i);
        }
    }

    let mut status: Vec<Option<StageStatus>> = vec![None; n];
    let mut keys: Vec<Option<String>> = vec![None; n];
    let mut digests: Vec<Option<String>> = vec![None; n];
    let mut payloads: Vec<Option<Json>> = vec![None; n];
    let mut seconds: Vec<f64> = vec![0.0; n];
    let mut attempts: Vec<u32> = vec![0; n];
    let mut metrics = MetricsRegistry::new();
    let (mut hits, mut misses, mut executed) = (0u64, 0u64, 0u64);
    let mut retries_total = 0u64;
    let mut coalesced_total = 0u64;

    // Streaming progress events (no-ops when no bus is attached).
    let publish = |event: &mut Json, kind: &str| {
        if let Some(bus) = &opts.events {
            event.insert("event", Json::Str(kind.to_string()));
            if let Some(rid) = &opts.request_id {
                event.insert("request_id", Json::Str(rid.clone()));
            }
            bus.publish(event.clone());
        }
    };
    {
        let mut ev = Json::object();
        ev.insert("scenario", Json::Str(sc.name.clone()));
        ev.insert("scale", scale_to_json(scale));
        ev.insert("stages", Json::Num(n as f64));
        publish(&mut ev, "run.started");
    }

    let (tx, rx) = mpsc::channel::<StageReport>();
    // Ready queue seeded in topological order; later insertions happen
    // as dependencies resolve.
    let mut ready: VecDeque<usize> = order.iter().copied().filter(|&i| remaining[i] == 0).collect();
    let mut running: HashMap<usize, Running> = HashMap::new();
    // Failed/timed-out attempts waiting out their backoff: (due, stage).
    let mut pending_retry: Vec<(Instant, usize)> = Vec::new();
    // One checkpoint per launched stage (shared across its attempts: a
    // timed-out attempt's detached thread keeps streaming units the
    // retry then resumes).
    let mut checkpoints: HashMap<usize, Arc<StageCheckpoint>> = HashMap::new();
    let mut next_generation = 0u64;
    let mut finished = 0usize;
    // Latched once the cancel token is observed set.
    let mut cancelling = false;
    let mut grace_deadline: Option<Instant> = None;

    // Marks a stage terminal and cascades skips to its dependents.
    // Declared as a macro rather than a closure because it re-borrows
    // most of the mutable state above.
    macro_rules! finish_stage {
        ($i:expr, $st:expr) => {{
            let i = $i;
            let st: StageStatus = $st;
            if opts.verbose {
                println!(
                    "{:>8}  {:<24} {}",
                    st.tag(),
                    sc.stages[i].id,
                    match &st {
                        StageStatus::Ran => format!("{:.2}s", seconds[i]),
                        StageStatus::Failed(e) => e.to_string(),
                        StageStatus::TimedOut(l) => format!("budget {l}s"),
                        StageStatus::Skipped(w) => w.clone(),
                        StageStatus::Cancelled(w) => w.clone(),
                        StageStatus::Cached => String::new(),
                    }
                );
            }
            if opts.events.is_some() {
                let mut ev = Json::object();
                ev.insert("id", Json::Str(sc.stages[i].id.clone()));
                ev.insert("status", Json::Str(st.result_word().to_string()));
                ev.insert("tag", Json::Str(st.tag().to_string()));
                ev.insert("seconds", Json::Num(seconds[i]));
                ev.insert("key", keys[i].clone().map_or(Json::Null, Json::Str));
                if let Some(err) = match &st {
                    StageStatus::Failed(e) => Some(e.to_json()),
                    StageStatus::TimedOut(l) => {
                        Some(error_json("timeout", &format!("timed out after {l} seconds")))
                    }
                    StageStatus::Skipped(w) => Some(error_json("skipped", w)),
                    StageStatus::Cancelled(w) => Some(error_json("cancelled", w)),
                    _ => None,
                } {
                    ev.insert("error", err);
                }
                publish(&mut ev, "stage.finished");
            }
            if obs::log::enabled(obs::log::Level::Debug) {
                obs::log::debug(
                    "stage finished",
                    &log_fields(vec![
                        ("stage", Json::Str(sc.stages[i].id.clone())),
                        ("status", Json::Str(st.result_word().to_string())),
                        ("seconds", Json::Num(seconds[i])),
                    ]),
                );
            }
            let produced = st.is_ok();
            status[i] = Some(st);
            finished += 1;
            let mut cascade: VecDeque<usize> = dependents[i].iter().copied().collect();
            while let Some(j) = cascade.pop_front() {
                if status[j].is_some() {
                    continue;
                }
                if produced {
                    remaining[j] -= 1;
                    if remaining[j] == 0 {
                        ready.push_back(j);
                    }
                } else {
                    let why = format!(
                        "dependency {:?} did not produce a payload",
                        sc.stages[i].id
                    );
                    status[j] = Some(StageStatus::Skipped(why.clone()));
                    finished += 1;
                    if opts.verbose {
                        println!("{:>8}  {:<24} after {}", "skip", sc.stages[j].id, sc.stages[i].id);
                    }
                    if opts.events.is_some() {
                        let mut ev = Json::object();
                        ev.insert("id", Json::Str(sc.stages[j].id.clone()));
                        ev.insert("status", Json::Str("skipped".to_string()));
                        ev.insert("error", error_json("skipped", &why));
                        publish(&mut ev, "stage.finished");
                    }
                    cascade.extend(dependents[j].iter().copied());
                }
            }
        }};
    }

    while finished < n {
        // Latch cancellation the moment the token is observed set.
        if !cancelling && opts.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            cancelling = true;
            grace_deadline = Some(Instant::now() + CANCEL_GRACE);
            obs::trace::instant("orchestrator", "run.cancelled");
        }

        if cancelling {
            // Nothing new launches; queued work is terminally cancelled.
            let queued_retries: Vec<usize> =
                pending_retry.drain(..).map(|(_, i)| i).collect();
            for i in queued_retries {
                if status[i].is_none() {
                    finish_stage!(
                        i,
                        StageStatus::Cancelled("run interrupted before retry".into())
                    );
                }
            }
            while let Some(i) = ready.pop_front() {
                if status[i].is_none() {
                    finish_stage!(
                        i,
                        StageStatus::Cancelled("run interrupted before launch".into())
                    );
                }
            }
            if running.is_empty() {
                for i in 0..n {
                    if status[i].is_none() {
                        finish_stage!(i, StageStatus::Cancelled("run interrupted".into()));
                    }
                }
                continue;
            }
            if grace_deadline.is_some_and(|d| Instant::now() >= d) {
                // Grace elapsed: abandon whatever is still in flight (its
                // units are checkpointed; late reports are stale by
                // generation).
                let in_flight: Vec<usize> = running.keys().copied().collect();
                for i in in_flight {
                    let r = running.remove(&i).expect("in-flight stage was running");
                    seconds[i] += r.launched.elapsed().as_secs_f64();
                    finish_stage!(
                        i,
                        StageStatus::Cancelled("run interrupted (grace elapsed)".into())
                    );
                }
                continue;
            }
        } else {
            // Promote retries whose backoff has elapsed.
            let now = Instant::now();
            let mut j = 0;
            while j < pending_retry.len() {
                if pending_retry[j].0 <= now {
                    let (_, i) = pending_retry.swap_remove(j);
                    ready.push_back(i);
                } else {
                    j += 1;
                }
            }

            // Launch ready stages up to the concurrency cap.
            while running.len() < jobs {
                let Some(i) = ready.pop_front() else { break };
                if status[i].is_some() {
                    continue; // skipped while queued
                }
                let s = &sc.stages[i];
                let mut inputs: BTreeMap<String, Json> = BTreeMap::new();
                let mut dep_digests: BTreeMap<String, String> = BTreeMap::new();
                for d in &s.deps {
                    let j = index_of[d.as_str()];
                    inputs.insert(d.clone(), payloads[j].clone().expect("dep payload present"));
                    dep_digests.insert(d.clone(), digests[j].clone().expect("dep digest present"));
                }
                let key = stage_key(&s.kind, &s.params, scale, &dep_digests);
                keys[i] = Some(key.clone());

                if opts.use_cache && attempts[i] == 0 {
                    if let Some(entry) = store.get(&key) {
                        digests[i] = Some(entry.payload_hash);
                        payloads[i] = Some(entry.payload);
                        hits += 1;
                        obs::trace::instant_with("orchestrator", || format!("cas.hit:{}", s.id));
                        finish_stage!(i, StageStatus::Cached);
                        continue;
                    }
                    misses += 1;
                    obs::trace::instant_with("orchestrator", || format!("cas.miss:{}", s.id));
                }

                let checkpoint = if opts.use_cache {
                    Some(
                        checkpoints
                            .entry(i)
                            .or_insert_with(|| {
                                Arc::new(StageCheckpoint::new(store.clone(), &key, &s.kind))
                            })
                            .clone(),
                    )
                } else {
                    None
                };
                let cancel = opts.cancel.clone().unwrap_or_default();
                attempts[i] += 1;
                next_generation += 1;
                let generation = next_generation;
                let deadline = s
                    .timeout_seconds
                    .or(sc.default_timeout_seconds)
                    .map(|t| Instant::now() + Duration::from_secs_f64(t));
                running.insert(
                    i,
                    Running {
                        generation,
                        launched: Instant::now(),
                        deadline,
                    },
                );
                if opts.events.is_some() {
                    let mut ev = Json::object();
                    ev.insert("id", Json::Str(s.id.clone()));
                    ev.insert("kind", Json::Str(s.kind.clone()));
                    ev.insert("attempt", Json::Num(f64::from(attempts[i])));
                    publish(&mut ev, "stage.launched");
                }
                let tx = tx.clone();
                let kind = s.kind.clone();
                let params = s.params.clone();
                let stage_id = s.id.clone();
                let flight = opts.flight.clone();
                let request_id = opts.request_id.clone();
                std::thread::spawn(move || {
                    let _stage_span =
                        obs::trace::span_with("orchestrator", || match &request_id {
                            Some(rid) => format!("stage:{stage_id}@{rid}"),
                            None => format!("stage:{stage_id}"),
                        });
                    let t0 = Instant::now();
                    let compute = || {
                        catch_unwind(AssertUnwindSafe(|| {
                            stage::execute(
                                &kind,
                                &StageCtx {
                                    params: &params,
                                    inputs: &inputs,
                                    scale,
                                    checkpoint,
                                    cancel: cancel.clone(),
                                },
                            )
                        }))
                        .map_err(|panic| StageError::panic(panic_message(panic.as_ref())))
                        .and_then(|r| r.map_err(StageError::error))
                    };
                    // With a flight table attached, a concurrent leader
                    // already computing this exact key is shared instead
                    // of re-executed (the follower blocks, polling its
                    // cancel token).
                    let (result, coalesced) = match &flight {
                        Some(table) => table.run_or_wait(&key, &cancel, compute),
                        None => (compute(), false),
                    };
                    if coalesced {
                        obs::trace::instant_with("orchestrator", || {
                            format!("flight.coalesced:{stage_id}")
                        });
                    }
                    let _ = tx.send((i, generation, result, t0.elapsed().as_secs_f64(), coalesced));
                });
            }
        }

        if running.is_empty() {
            if cancelling {
                continue;
            }
            if !pending_retry.is_empty() {
                // Idle until the earliest backoff elapses (capped so a
                // cancel token is still noticed promptly).
                let due = pending_retry
                    .iter()
                    .map(|&(t, _)| t)
                    .min()
                    .expect("pending_retry is non-empty");
                let mut wait = due.saturating_duration_since(Instant::now());
                if opts.cancel.is_some() {
                    wait = wait.min(CANCEL_POLL);
                }
                std::thread::sleep(wait.max(Duration::from_millis(1)));
                continue;
            }
            if ready.is_empty() && finished < n {
                // Defensive: validate() guarantees this cannot happen.
                for s in status.iter_mut().filter(|s| s.is_none()) {
                    *s = Some(StageStatus::Skipped("scheduler stall".into()));
                    finished += 1;
                }
            }
            continue;
        }

        // Block until a report arrives, the earliest deadline passes,
        // the earliest retry comes due, or the next cancel poll.
        let now = Instant::now();
        let mut wait = running
            .values()
            .filter_map(|r| r.deadline)
            .map(|d| d.saturating_duration_since(now))
            .min()
            .unwrap_or(Duration::from_secs(3600));
        if let Some(due) = pending_retry.iter().map(|&(t, _)| t).min() {
            wait = wait.min(due.saturating_duration_since(now));
        }
        if opts.cancel.is_some() || cancelling {
            wait = wait.min(CANCEL_POLL);
        }
        match rx.recv_timeout(wait.max(Duration::from_millis(1))) {
            Ok((i, generation, result, secs, coalesced)) => {
                if running.get(&i).map(|r| r.generation) != Some(generation) {
                    // Late report from an abandoned attempt: discard,
                    // never cache.
                    continue;
                }
                running.remove(&i);
                seconds[i] += secs;
                if coalesced {
                    coalesced_total += 1;
                }
                match result {
                    Ok(payload) => {
                        executed += 1;
                        let digest = if opts.use_cache {
                            store
                                .put(&keys[i].clone().expect("key set at launch"), &sc.stages[i].kind, &payload)
                                .unwrap_or_else(|_| content_hash(payload.render().as_bytes()))
                        } else {
                            content_hash(payload.render().as_bytes())
                        };
                        digests[i] = Some(digest);
                        payloads[i] = Some(payload);
                        // The full artifact is on disk; this stage's unit
                        // checkpoints are redundant now.
                        if let Some(cp) = checkpoints.get(&i) {
                            let _ = cp.clear();
                        }
                        finish_stage!(i, StageStatus::Ran);
                    }
                    // Check the token too, not just the latch: the cancel
                    // may have landed after this iteration's latch check
                    // but before the stage's error report arrived.
                    Err(e)
                        if e.kind == StageErrorKind::Cancelled
                            || cancelling
                            || opts.cancel.as_ref().is_some_and(CancelToken::is_cancelled) =>
                    {
                        // A stage erroring while the run winds down is
                        // (almost always) the cancellation itself
                        // surfacing; either way, retrying is pointless.
                        finish_stage!(i, StageStatus::Cancelled(e.message));
                    }
                    Err(e) if attempts[i] <= sc.stages[i].retries => {
                        retries_total += 1;
                        let backoff = sc.stages[i].backoff_ms;
                        pending_retry
                            .push((Instant::now() + Duration::from_secs_f64(backoff / 1000.0), i));
                        obs::trace::instant_with("orchestrator", || {
                            format!("stage.retry:{}", sc.stages[i].id)
                        });
                        if opts.verbose {
                            println!(
                                "{:>8}  {:<24} attempt {} failed ({e}); retry in {backoff:.0}ms",
                                "retry", sc.stages[i].id, attempts[i]
                            );
                        }
                    }
                    Err(e) => finish_stage!(i, StageStatus::Failed(e)),
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                let now = Instant::now();
                let expired: Vec<usize> = running
                    .iter()
                    .filter(|(_, r)| r.deadline.is_some_and(|d| d <= now))
                    .map(|(&i, _)| i)
                    .collect();
                for i in expired {
                    let r = running.remove(&i).expect("expired stage was running");
                    seconds[i] += r.launched.elapsed().as_secs_f64();
                    let limit = sc.stages[i]
                        .timeout_seconds
                        .or(sc.default_timeout_seconds)
                        .unwrap_or(0.0);
                    if !cancelling && attempts[i] <= sc.stages[i].retries {
                        retries_total += 1;
                        let backoff = sc.stages[i].backoff_ms;
                        pending_retry
                            .push((Instant::now() + Duration::from_secs_f64(backoff / 1000.0), i));
                        obs::trace::instant_with("orchestrator", || {
                            format!("stage.retry:{}", sc.stages[i].id)
                        });
                        if opts.verbose {
                            println!(
                                "{:>8}  {:<24} attempt {} hit its {limit}s budget; retry in {backoff:.0}ms",
                                "retry", sc.stages[i].id, attempts[i]
                            );
                        }
                    } else {
                        finish_stage!(i, StageStatus::TimedOut(limit));
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                unreachable!("scheduler holds a sender")
            }
        }
    }

    let terminal = |pred: fn(&StageStatus) -> bool| -> u64 {
        status.iter().flatten().filter(|s| pred(s)).count() as u64
    };
    metrics.set_counter("orchestrator.cas.hits", hits);
    metrics.set_counter("orchestrator.cas.misses", misses);
    metrics.set_counter("orchestrator.stages.executed", executed);
    metrics.set_counter(
        "orchestrator.stages.failed",
        terminal(|s| matches!(s, StageStatus::Failed(_))),
    );
    metrics.set_counter(
        "orchestrator.stages.timeout",
        terminal(|s| matches!(s, StageStatus::TimedOut(_))),
    );
    metrics.set_counter(
        "orchestrator.stages.skipped",
        terminal(|s| matches!(s, StageStatus::Skipped(_))),
    );
    metrics.set_counter(
        "orchestrator.stages.cancelled",
        terminal(|s| matches!(s, StageStatus::Cancelled(_))),
    );
    metrics.set_counter("orchestrator.stages.retried", retries_total);
    metrics.set_counter("orchestrator.flight.coalesced", coalesced_total);
    let (mut ckpt_resumed, mut ckpt_stored) = (0u64, 0u64);
    for cp in checkpoints.values() {
        ckpt_resumed += cp.resumed();
        ckpt_stored += cp.stored();
    }
    metrics.set_counter("orchestrator.checkpoint.resumed_units", ckpt_resumed);
    metrics.set_counter("orchestrator.checkpoint.stored_units", ckpt_stored);
    metrics.set_gauge("orchestrator.run.wall_seconds", started.elapsed().as_secs_f64());

    let stages = order
        .iter()
        .map(|&i| StageResult {
            id: sc.stages[i].id.clone(),
            kind: sc.stages[i].kind.clone(),
            key: keys[i].clone(),
            artifact: digests[i].clone(),
            status: status[i].clone().expect("all stages terminal"),
            seconds: seconds[i],
            attempts: attempts[i],
        })
        .collect();

    let summary = RunSummary {
        scenario: sc.name.clone(),
        scale,
        stages,
        cache_hits: hits,
        cache_misses: misses,
        executed,
        wall_seconds: started.elapsed().as_secs_f64(),
        jobs,
        metrics,
        request_id: opts.request_id.clone(),
    };
    {
        let mut ev = Json::object();
        ev.insert("ok", Json::Bool(summary.ok()));
        ev.insert("fingerprint", Json::Str(summary.fingerprint()));
        ev.insert("cache_hits", Json::Num(summary.cache_hits as f64));
        ev.insert("executed", Json::Num(summary.executed as f64));
        ev.insert("coalesced", Json::Num(coalesced_total as f64));
        ev.insert("wall_seconds", Json::Num(summary.wall_seconds));
        publish(&mut ev, "run.finished");
    }
    if obs::log::enabled(obs::log::Level::Info) {
        obs::log::info(
            "run finished",
            &log_fields(vec![
                ("scenario", Json::Str(sc.name.clone())),
                ("ok", Json::Bool(summary.ok())),
                ("cache_hits", Json::Num(summary.cache_hits as f64)),
                ("executed", Json::Num(summary.executed as f64)),
                ("wall_seconds", Json::Num(summary.wall_seconds)),
            ]),
        );
    }
    Ok(summary)
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked (non-string payload)".to_string()
    }
}
