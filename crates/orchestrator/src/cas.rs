//! The content-addressed artifact store under `results/cas/`.
//!
//! Each artifact is one JSON file named `<key>.json`, where `key` is the
//! [stage fingerprint](crate::sched::stage_key) of the producing stage —
//! hash of (stage kind, canonical params, run scale, input artifact
//! digests). The file is a small envelope around the stage payload:
//!
//! ```json
//! {
//!   "schema": 1,
//!   "key": "…32 hex digits…",
//!   "kind": "retention_map",
//!   "payload_hash": "…hash of the compact payload rendering…",
//!   "payload": { … }
//! }
//! ```
//!
//! **Corruption is a miss, never a crash.** [`ArtifactStore::get`]
//! re-renders the payload and re-verifies `payload_hash` on every read;
//! a truncated, bit-rotted, or hand-edited entry simply fails
//! verification and the scheduler recomputes the stage. Writes go
//! through a temp file + rename so a crash mid-write cannot leave a
//! half-written entry under the final name.

use crate::hash::content_hash;
use obs::Json;
use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::SystemTime;

/// Envelope schema version, bumped on breaking layout changes (which
/// invalidates every cached artifact — old entries become misses).
pub const CAS_SCHEMA: u64 = 1;

/// A verified artifact read back from the store.
#[derive(Debug, Clone, PartialEq)]
pub struct CasEntry {
    /// The stage fingerprint the artifact is filed under.
    pub key: String,
    /// The producing stage kind (e.g. `chip_campaign`).
    pub kind: String,
    /// Digest of the compact payload rendering.
    pub payload_hash: String,
    /// The stage payload itself.
    pub payload: Json,
}

/// One row of [`ArtifactStore::ls`].
#[derive(Debug, Clone, PartialEq)]
pub struct CasListing {
    /// The key (file stem).
    pub key: String,
    /// The stage kind, or `None` when the entry fails verification.
    pub kind: Option<String>,
    /// On-disk size in bytes.
    pub bytes: u64,
}

/// What [`ArtifactStore::gc_keep`] (or [`ArtifactStore::gc_bounded`])
/// did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Entries retained because their key was in the keep set.
    pub kept: usize,
    /// Entries removed (unreferenced, corrupt, or LRU-evicted).
    pub removed: usize,
    /// Bytes freed by the removals.
    pub bytes_freed: u64,
    /// Unreferenced entries spared because they were written after the
    /// gc's cutoff instant (a concurrent `run` may own them).
    pub skipped_fresh: usize,
    /// Of `removed`, how many were healthy entries evicted oldest-first
    /// by [`ArtifactStore::gc_bounded`]'s size budget (0 for plain
    /// keep-set gcs).
    pub lru_evicted: usize,
}

impl GcReport {
    /// Machine-readable form for `pv3t1d gc --json`, the janitor's
    /// telemetry, and CI assertions.
    pub fn to_json(&self) -> Json {
        let mut o = Json::object();
        o.insert("kept", Json::Num(self.kept as f64));
        o.insert("removed", Json::Num(self.removed as f64));
        o.insert("bytes_freed", Json::Num(self.bytes_freed as f64));
        o.insert("skipped_fresh", Json::Num(self.skipped_fresh as f64));
        o.insert("lru_evicted", Json::Num(self.lru_evicted as f64));
        o
    }
}

/// A flat directory of content-addressed artifacts.
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    root: PathBuf,
}

impl ArtifactStore {
    /// A store rooted at `root` (conventionally `results/cas/`). The
    /// directory is created lazily on first write.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Self { root: root.into() }
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The on-disk path of a key.
    pub fn path_for(&self, key: &str) -> PathBuf {
        self.root.join(format!("{key}.json"))
    }

    /// Stores `payload` under `key`, returning the payload digest.
    /// Atomic against readers: the entry appears under its final name
    /// only once fully written.
    pub fn put(&self, key: &str, kind: &str, payload: &Json) -> io::Result<String> {
        std::fs::create_dir_all(&self.root)?;
        let payload_hash = content_hash(payload.render().as_bytes());
        let mut envelope = Json::object();
        envelope.insert("schema", Json::Num(CAS_SCHEMA as f64));
        envelope.insert("key", Json::Str(key.to_string()));
        envelope.insert("kind", Json::Str(kind.to_string()));
        envelope.insert("payload_hash", Json::Str(payload_hash.clone()));
        envelope.insert("payload", payload.clone());
        let tmp = self.root.join(format!(".{key}.tmp"));
        std::fs::write(&tmp, envelope.render_pretty())?;
        std::fs::rename(&tmp, self.path_for(key))?;
        Ok(payload_hash)
    }

    /// Reads and verifies the entry for `key`. Returns `None` — a cache
    /// miss — for absent files, unparseable JSON, schema or key
    /// mismatches, and payloads whose recomputed digest disagrees with
    /// the stored `payload_hash` (truncation / bit-rot).
    pub fn get(&self, key: &str) -> Option<CasEntry> {
        let text = std::fs::read_to_string(self.path_for(key)).ok()?;
        Self::verify(key, &text)
    }

    /// The verification core of [`ArtifactStore::get`], separated so the
    /// corruption tests can drive it directly.
    fn verify(key: &str, text: &str) -> Option<CasEntry> {
        let v = Json::parse(text).ok()?;
        if v.get("schema").and_then(Json::as_u64) != Some(CAS_SCHEMA) {
            return None;
        }
        if v.get("key").and_then(Json::as_str) != Some(key) {
            return None;
        }
        let kind = v.get("kind").and_then(Json::as_str)?.to_string();
        let declared = v.get("payload_hash").and_then(Json::as_str)?.to_string();
        let payload = v.get("payload")?.clone();
        let actual = content_hash(payload.render().as_bytes());
        if declared != actual {
            return None;
        }
        Some(CasEntry {
            key: key.to_string(),
            kind,
            payload_hash: declared,
            payload,
        })
    }

    /// Lists every `.json` entry in the store, flagging ones that fail
    /// verification with `kind: None`. An absent store directory lists
    /// as empty.
    pub fn ls(&self) -> Vec<CasListing> {
        let mut out = Vec::new();
        let entries = match std::fs::read_dir(&self.root) {
            Ok(e) => e,
            Err(_) => return out,
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            let bytes = entry.metadata().map(|m| m.len()).unwrap_or(0);
            let kind = self.get(stem).map(|e| e.kind);
            out.push(CasListing {
                key: stem.to_string(),
                kind,
                bytes,
            });
        }
        out.sort_by(|a, b| a.key.cmp(&b.key));
        out
    }

    /// Removes the entry for `key` (no error if absent).
    pub fn remove(&self, key: &str) -> io::Result<()> {
        match std::fs::remove_file(self.path_for(key)) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }

    /// Removes every entry whose key is not in `keep` (corrupt entries
    /// included — they can never be hits). When `dry_run` is set nothing
    /// is deleted; the report describes what *would* happen.
    ///
    /// Checkpoint sub-entries (`<key>.u<index>`, see [`unit_key`]) are
    /// reachable whenever their base stage key is kept, so an interrupted
    /// campaign's partial progress survives a gc of its scenario.
    pub fn gc_keep(&self, keep: &BTreeSet<String>, dry_run: bool) -> io::Result<GcReport> {
        self.gc_keep_with_cutoff(keep, dry_run, None)
    }

    /// [`ArtifactStore::gc_keep`] with a freshness cutoff: unreferenced
    /// entries whose mtime is strictly after `cutoff` are *skipped*, not
    /// removed. The caller captures the cutoff **before** computing the
    /// keep set, which closes the scan-to-unlink race against a
    /// concurrent `run` — an entry that appeared after the keep set was
    /// planned cannot be in it, but is not garbage either.
    pub fn gc_keep_with_cutoff(
        &self,
        keep: &BTreeSet<String>,
        dry_run: bool,
        cutoff: Option<SystemTime>,
    ) -> io::Result<GcReport> {
        let mut report = GcReport::default();
        for row in self.ls() {
            let reachable = row.kind.is_some()
                && (keep.contains(&row.key)
                    || checkpoint_base(&row.key).is_some_and(|base| keep.contains(base)));
            if reachable {
                report.kept += 1;
                continue;
            }
            if let Some(cutoff) = cutoff {
                let fresh = std::fs::metadata(self.path_for(&row.key))
                    .and_then(|m| m.modified())
                    .map(|mtime| mtime > cutoff)
                    .unwrap_or(false);
                if fresh {
                    report.skipped_fresh += 1;
                    continue;
                }
            }
            report.removed += 1;
            report.bytes_freed += row.bytes;
            if !dry_run {
                self.remove(&row.key)?;
            }
        }
        Ok(report)
    }

    /// Size/LRU-bounded gc — the continuous-janitor policy. Unlike
    /// [`ArtifactStore::gc_keep`], *nothing is garbage by default*: a
    /// multi-tenant daemon cannot enumerate every scenario its clients
    /// may resubmit, so healthy entries are kept while the store fits in
    /// `max_bytes` and evicted **oldest-mtime-first** once it does not.
    ///
    /// Invariants:
    /// * corrupt entries are always removed (they can never be hits);
    /// * entries in `keep` are never evicted, whatever the budget;
    /// * entries modified after `cutoff` are never evicted (the PR 5
    ///   `skipped_fresh` race guard: a concurrent run may own them) —
    ///   pass the janitor's scan-start instant minus its freshness
    ///   window;
    /// * checkpoint sub-entries (`<key>.u<i>`) ride with their base key:
    ///   kept while the base is kept, and counted against the budget.
    pub fn gc_bounded(
        &self,
        keep: &BTreeSet<String>,
        max_bytes: u64,
        dry_run: bool,
        cutoff: Option<SystemTime>,
    ) -> io::Result<GcReport> {
        let mut report = GcReport::default();
        // Oldest-first queue of healthy, evictable entries.
        let mut candidates: Vec<(SystemTime, String, u64)> = Vec::new();
        let mut total_bytes = 0u64;
        for row in self.ls() {
            if row.kind.is_none() {
                report.removed += 1;
                report.bytes_freed += row.bytes;
                if !dry_run {
                    self.remove(&row.key)?;
                }
                continue;
            }
            total_bytes += row.bytes;
            let pinned = keep.contains(&row.key)
                || checkpoint_base(&row.key).is_some_and(|base| keep.contains(base));
            let mtime = std::fs::metadata(self.path_for(&row.key))
                .and_then(|m| m.modified())
                .unwrap_or(SystemTime::UNIX_EPOCH);
            let fresh = cutoff.is_some_and(|c| mtime > c);
            if pinned || fresh {
                if fresh && !pinned {
                    report.skipped_fresh += 1;
                }
                report.kept += 1;
                continue;
            }
            candidates.push((mtime, row.key, row.bytes));
        }
        candidates.sort();
        let mut over = total_bytes.saturating_sub(max_bytes);
        for (_, key, bytes) in candidates {
            if over == 0 {
                report.kept += 1;
                continue;
            }
            report.removed += 1;
            report.lru_evicted += 1;
            report.bytes_freed += bytes;
            over = over.saturating_sub(bytes);
            if !dry_run {
                self.remove(&key)?;
            }
        }
        Ok(report)
    }
}

/// The sub-key filing one campaign unit's checkpoint under its stage
/// key: `<key>.u<index>`. Unit entries live next to full stage entries
/// in the same store; [`checkpoint_base`] recovers the stage key.
pub fn unit_key(key: &str, index: usize) -> String {
    format!("{key}.u{index}")
}

/// The stage key a checkpoint sub-key belongs to, when `key` has the
/// `<stage>.u<digits>` shape produced by [`unit_key`]; `None` for plain
/// stage keys.
pub fn checkpoint_base(key: &str) -> Option<&str> {
    let (base, digits) = key.rsplit_once(".u")?;
    if !base.is_empty() && !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()) {
        Some(base)
    } else {
        None
    }
}

/// Streaming per-unit checkpoints for one long-running stage.
///
/// Completed campaign units are stored in the artifact store under
/// [`unit_key`] sub-keys of the stage's cache key, as they finish. Since
/// the stage key already fingerprints kind, params, scale, and the whole
/// upstream cone, a unit checkpoint can only ever be replayed into the
/// *identical* computation — resuming after a crash is bit-identical to
/// an uninterrupted run by construction.
///
/// All methods take `&self` and are thread-safe: campaign workers load
/// and store units concurrently. Storage is best-effort — an I/O failure
/// costs recomputation later, never correctness.
#[derive(Debug)]
pub struct StageCheckpoint {
    store: ArtifactStore,
    key: String,
    kind: String,
    resumed: AtomicU64,
    stored: AtomicU64,
}

impl StageCheckpoint {
    /// A checkpoint for the stage with cache key `key`; unit entries are
    /// tagged with the kind `<stage kind>.unit`.
    pub fn new(store: ArtifactStore, key: &str, stage_kind: &str) -> Self {
        Self {
            store,
            key: key.to_string(),
            kind: format!("{stage_kind}.unit"),
            resumed: AtomicU64::new(0),
            stored: AtomicU64::new(0),
        }
    }

    /// The stage cache key the checkpoint is filed under.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// Loads unit `index`'s checkpointed payload, if present and intact
    /// (corruption reads as a miss, exactly like full stage entries).
    pub fn load_unit(&self, index: usize) -> Option<Json> {
        let entry = self.store.get(&unit_key(&self.key, index))?;
        self.resumed.fetch_add(1, Ordering::Relaxed);
        Some(entry.payload)
    }

    /// Stores unit `index`'s payload. Best-effort: failures are swallowed
    /// (the unit simply recomputes on the next resume).
    pub fn store_unit(&self, index: usize, payload: &Json) {
        if self
            .store
            .put(&unit_key(&self.key, index), &self.kind, payload)
            .is_ok()
        {
            self.stored.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Units served from the checkpoint so far.
    pub fn resumed(&self) -> u64 {
        self.resumed.load(Ordering::Relaxed)
    }

    /// Units written to the checkpoint so far.
    pub fn stored(&self) -> u64 {
        self.stored.load(Ordering::Relaxed)
    }

    /// Removes every unit entry of this stage (called once the full
    /// stage artifact lands — the sub-entries are then redundant).
    /// Returns the number of entries removed.
    pub fn clear(&self) -> io::Result<usize> {
        let mut removed = 0;
        for row in self.store.ls() {
            if checkpoint_base(&row.key) == Some(self.key.as_str()) {
                self.store.remove(&row.key)?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> ArtifactStore {
        let dir = std::env::temp_dir().join(format!(
            "pv3t1d_cas_{tag}_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        ArtifactStore::new(dir)
    }

    fn payload(n: f64) -> Json {
        let mut p = Json::object();
        p.insert("kind", Json::Str("unit".into()));
        p.insert("value", Json::Num(n));
        p
    }

    #[test]
    fn put_get_round_trips() {
        let store = temp_store("roundtrip");
        let hash = store.put("k1", "unit", &payload(1.5)).unwrap();
        let entry = store.get("k1").expect("hit");
        assert_eq!(entry.kind, "unit");
        assert_eq!(entry.payload_hash, hash);
        assert_eq!(entry.payload, payload(1.5));
        assert!(store.get("absent").is_none());
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn corrupted_entries_read_as_misses() {
        let store = temp_store("corrupt");
        store.put("k1", "unit", &payload(2.5)).unwrap();
        let path = store.path_for("k1");

        // Truncation: unparseable JSON.
        let full = std::fs::read_to_string(&path).unwrap();
        assert!(full.contains("2.5"), "test assumes the value is visible");
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(store.get("k1").is_none());

        // Bit-rot: valid JSON, payload no longer matches its digest.
        std::fs::write(&path, full.replace("2.5", "3.5")).unwrap();
        assert!(store.get("k1").is_none());

        // Key mismatch: entry filed under the wrong name.
        std::fs::write(&path, &full).unwrap();
        std::fs::rename(&path, store.path_for("k2")).unwrap();
        assert!(store.get("k2").is_none());
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn unit_keys_round_trip_through_checkpoint_base() {
        assert_eq!(unit_key("abc123", 7), "abc123.u7");
        assert_eq!(checkpoint_base("abc123.u7"), Some("abc123"));
        assert_eq!(checkpoint_base("abc123.u42"), Some("abc123"));
        // Not unit keys: no suffix, empty digits, non-digits, bare ".u1".
        assert_eq!(checkpoint_base("abc123"), None);
        assert_eq!(checkpoint_base("abc123.u"), None);
        assert_eq!(checkpoint_base("abc123.unit"), None);
        assert_eq!(checkpoint_base(".u1"), None);
        // Nested: a unit of a key that itself ends like a unit key peels
        // one layer only.
        assert_eq!(checkpoint_base("k.u1.u2"), Some("k.u1"));
    }

    #[test]
    fn checkpoint_stores_resumes_and_clears_units() {
        let store = temp_store("ckpt");
        let cp = StageCheckpoint::new(store.clone(), "stagekey", "chip_campaign");
        assert!(cp.load_unit(0).is_none());
        cp.store_unit(0, &payload(1.0));
        cp.store_unit(3, &payload(2.0));
        assert_eq!(cp.stored(), 2);
        assert_eq!(cp.load_unit(0), Some(payload(1.0)));
        assert_eq!(cp.load_unit(3), Some(payload(2.0)));
        assert!(cp.load_unit(1).is_none());
        assert_eq!(cp.resumed(), 2);

        // Unit entries verify like any CAS entry: corruption is a miss.
        let path = store.path_for("stagekey.u0");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("1", "9")).unwrap();
        assert!(cp.load_unit(0).is_none());

        // A sibling stage's units are untouched by clear().
        let other = StageCheckpoint::new(store.clone(), "otherkey", "chip_campaign");
        other.store_unit(0, &payload(5.0));
        assert_eq!(cp.clear().unwrap(), 2);
        assert!(cp.load_unit(3).is_none());
        assert_eq!(other.load_unit(0), Some(payload(5.0)));
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn gc_keeps_unit_entries_of_kept_stages() {
        let store = temp_store("gc_units");
        store.put("stage_a", "unit", &payload(1.0)).unwrap();
        let cp_a = StageCheckpoint::new(store.clone(), "stage_a", "k");
        cp_a.store_unit(0, &payload(10.0));
        let cp_b = StageCheckpoint::new(store.clone(), "stage_b", "k");
        cp_b.store_unit(0, &payload(20.0));

        let keep: BTreeSet<String> = ["stage_a".to_string()].into();
        let report = store.gc_keep(&keep, false).unwrap();
        // stage_a and its unit survive; stage_b's orphan unit goes.
        assert_eq!((report.kept, report.removed), (2, 1));
        assert!(store.get("stage_a.u0").is_some());
        assert!(store.get("stage_b.u0").is_none());
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn gc_cutoff_spares_entries_written_after_the_scan() {
        let store = temp_store("gc_race");
        store.put("old", "unit", &payload(1.0)).unwrap();
        // The gc plans its keep set here...
        let cutoff = SystemTime::now();
        std::thread::sleep(std::time::Duration::from_millis(30));
        // ...while a concurrent run writes a fresh entry the plan never
        // saw. Without the cutoff it would be collected as unreachable.
        store.put("fresh", "unit", &payload(2.0)).unwrap();

        let keep = BTreeSet::new();
        let report = store
            .gc_keep_with_cutoff(&keep, false, Some(cutoff))
            .unwrap();
        assert_eq!((report.removed, report.skipped_fresh), (1, 1));
        assert!(store.get("old").is_none());
        assert!(store.get("fresh").is_some(), "fresh entry was collected");

        // Without a cutoff (the old behavior) the fresh entry is fair
        // game once it really is unreferenced garbage.
        let report = store.gc_keep(&keep, false).unwrap();
        assert_eq!(report.removed, 1);
        assert!(store.get("fresh").is_none());
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn gc_bounded_evicts_oldest_first_down_to_the_budget() {
        let store = temp_store("gc_bounded");
        // Three entries with strictly increasing mtimes.
        for (i, key) in ["oldest", "middle", "newest"].iter().enumerate() {
            store.put(key, "unit", &payload(i as f64)).unwrap();
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
        let bytes_each = std::fs::metadata(store.path_for("oldest")).unwrap().len();

        // Budget fits everything: nothing is evicted.
        let report = store
            .gc_bounded(&BTreeSet::new(), bytes_each * 10, false, None)
            .unwrap();
        assert_eq!((report.kept, report.removed, report.lru_evicted), (3, 0, 0));
        assert_eq!(report.to_json().get("lru_evicted").unwrap().as_u64(), Some(0));

        // Budget for ~two entries: the oldest goes, the rest stay.
        let report = store
            .gc_bounded(&BTreeSet::new(), bytes_each * 2, false, None)
            .unwrap();
        assert_eq!((report.kept, report.lru_evicted), (2, 1));
        assert!(store.get("oldest").is_none(), "oldest entry must be evicted");
        assert!(store.get("middle").is_some());
        assert!(store.get("newest").is_some());
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn gc_bounded_respects_keep_set_freshness_and_corruption() {
        let store = temp_store("gc_bounded_pins");
        store.put("pinned_old", "unit", &payload(1.0)).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(25));
        store.put("evictable", "unit", &payload(2.0)).unwrap();
        store.put("rot", "unit", &payload(3.0)).unwrap();
        std::fs::write(store.path_for("rot"), "{not json").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(25));
        let cutoff = SystemTime::now();
        // Outrun coarse filesystem mtime granularity so `fresh` is
        // unambiguously after the cutoff.
        std::thread::sleep(std::time::Duration::from_millis(30));
        store.put("fresh", "unit", &payload(4.0)).unwrap();

        // Zero budget wants everything gone — but the keep set pins the
        // oldest entry, the cutoff spares the freshest, and only the
        // unpinned stale entry (plus the corrupt one) is collected.
        let keep: BTreeSet<String> = ["pinned_old".to_string()].into();
        let report = store.gc_bounded(&keep, 0, false, Some(cutoff)).unwrap();
        assert_eq!(report.kept, 2, "pinned + fresh survive");
        assert_eq!(report.lru_evicted, 1);
        assert_eq!(report.removed, 2, "evictable + corrupt");
        assert_eq!(report.skipped_fresh, 1);
        assert!(store.get("pinned_old").is_some());
        assert!(store.get("fresh").is_some());
        assert!(store.get("evictable").is_none());
        assert!(!store.path_for("rot").exists());

        // Dry run reports without deleting.
        let report = store.gc_bounded(&BTreeSet::new(), 0, true, None).unwrap();
        assert_eq!(report.lru_evicted, 2);
        assert!(store.get("pinned_old").is_some());
        assert!(store.get("fresh").is_some());
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn ls_and_gc_account_for_corruption() {
        let store = temp_store("gc");
        store.put("keep", "unit", &payload(1.0)).unwrap();
        store.put("drop", "unit", &payload(2.0)).unwrap();
        store.put("rot", "unit", &payload(3.0)).unwrap();
        std::fs::write(store.path_for("rot"), "{not json").unwrap();

        let ls = store.ls();
        assert_eq!(ls.len(), 3);
        assert_eq!(ls.iter().filter(|r| r.kind.is_none()).count(), 1);

        let keep: BTreeSet<String> = ["keep".to_string(), "rot".to_string()].into();
        let dry = store.gc_keep(&keep, true).unwrap();
        assert_eq!((dry.kept, dry.removed), (1, 2));
        assert!(store.get("drop").is_some(), "dry run must not delete");

        let wet = store.gc_keep(&keep, false).unwrap();
        assert_eq!((wet.kept, wet.removed), (1, 2));
        assert!(wet.bytes_freed > 0);
        assert!(store.get("keep").is_some());
        assert!(store.get("drop").is_none());
        assert!(!store.path_for("rot").exists(), "corrupt entry collected");
        let _ = std::fs::remove_dir_all(store.root());
    }
}
