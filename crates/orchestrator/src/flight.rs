//! In-flight request coalescing over content-addressed stage keys.
//!
//! The CAS already deduplicates *completed* work: a stage whose key is on
//! disk is a hit. The [`FlightTable`] closes the remaining window — work
//! that is *currently executing*. When several scheduler invocations
//! (the daemon's concurrent jobs) reach the same [`stage
//! key`](crate::sched::stage_key) at the same time, the first becomes the
//! **leader** and computes; every other becomes a **follower** and blocks
//! until the leader publishes its result, then observes the identical
//! payload (and therefore the identical artifact digest and run
//! fingerprint). Since the key fingerprints kind, canonical params,
//! scale, and the whole upstream cone, sharing a result across jobs is
//! exactly as safe as sharing a cache hit.
//!
//! Followers poll their [`CancelToken`] while waiting, so a cancelled
//! job abandons the wait promptly (the leader, running under its own
//! job's token, keeps going for any remaining followers).

use crate::sched::{StageError, StageErrorKind};
use obs::{CancelToken, Json};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// How often a blocked follower re-checks its cancel token.
const FOLLOWER_POLL: Duration = Duration::from_millis(100);

/// One key's in-flight state.
#[derive(Debug)]
struct Flight {
    /// `None` while the leader is still computing.
    result: Option<Result<Json, StageError>>,
    /// Followers currently blocked on this key; the last one out (or the
    /// leader, if nobody waited) retires the entry.
    waiters: usize,
}

/// A process-wide table of in-flight stage computations, shared across
/// scheduler invocations via `Arc` (see [`crate::RunOptions::flight`]).
#[derive(Debug, Default)]
pub struct FlightTable {
    flights: Mutex<HashMap<String, Flight>>,
    cv: Condvar,
    executed: AtomicU64,
    coalesced: AtomicU64,
}

impl FlightTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stage executions this table actually ran (leader computations).
    pub fn executed_total(&self) -> u64 {
        self.executed.load(Ordering::Relaxed)
    }

    /// Stage requests served by piggybacking on a concurrent leader.
    pub fn coalesced_total(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Runs `compute` for `key` — or, if another thread is already
    /// running it, waits for that leader's result instead. Returns the
    /// result and whether it was coalesced (`true` = follower).
    ///
    /// A follower whose `cancel` token fires while waiting gives up with
    /// a `cancelled`-kind [`StageError`]; the computation itself is
    /// unaffected.
    pub fn run_or_wait(
        &self,
        key: &str,
        cancel: &CancelToken,
        compute: impl FnOnce() -> Result<Json, StageError>,
    ) -> (Result<Json, StageError>, bool) {
        {
            let mut flights = self.flights.lock().expect("flight table poisoned");
            match flights.get_mut(key) {
                None => {
                    // Leader: claim the key and compute outside the lock.
                    flights.insert(
                        key.to_string(),
                        Flight {
                            result: None,
                            waiters: 0,
                        },
                    );
                }
                Some(flight) => {
                    // Follower: wait for the leader to publish.
                    flight.waiters += 1;
                    return (self.wait_for(key, flights, cancel), true);
                }
            }
        }

        let result = compute();
        self.executed.fetch_add(1, Ordering::Relaxed);
        let mut flights = self.flights.lock().expect("flight table poisoned");
        let flight = flights.get_mut(key).expect("leader owns the flight entry");
        if flight.waiters == 0 {
            flights.remove(key);
        } else {
            flight.result = Some(result.clone());
            self.cv.notify_all();
        }
        (result, false)
    }

    /// Follower path: blocks (re-checking `cancel` every
    /// [`FOLLOWER_POLL`]) until the leader publishes for `key`, then
    /// takes a copy of the result and retires the entry if it was the
    /// last waiter.
    fn wait_for(
        &self,
        key: &str,
        mut flights: std::sync::MutexGuard<'_, HashMap<String, Flight>>,
        cancel: &CancelToken,
    ) -> Result<Json, StageError> {
        loop {
            let Some(flight) = flights.get_mut(key) else {
                // The leader retired the entry between our registration
                // and this wake-up — possible only through the last-
                // waiter cleanup below, never while we are registered.
                unreachable!("flight entry vanished under a registered waiter");
            };
            if let Some(result) = flight.result.clone() {
                flight.waiters -= 1;
                if flight.waiters == 0 {
                    flights.remove(key);
                }
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                return result;
            }
            if cancel.is_cancelled() {
                flight.waiters -= 1;
                // Never remove here: the leader still owns the entry.
                return Err(StageError {
                    kind: StageErrorKind::Cancelled,
                    message: "cancelled while waiting for a coalesced stage".into(),
                });
            }
            flights = self
                .cv
                .wait_timeout(flights, FOLLOWER_POLL)
                .expect("flight table poisoned")
                .0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    fn payload(n: f64) -> Json {
        let mut o = Json::object();
        o.insert("value", Json::Num(n));
        o
    }

    #[test]
    fn concurrent_identical_keys_execute_exactly_once() {
        let table = Arc::new(FlightTable::new());
        let executions = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let table = table.clone();
            let executions = executions.clone();
            handles.push(std::thread::spawn(move || {
                let cancel = CancelToken::new();
                table.run_or_wait("shared-key", &cancel, || {
                    executions.fetch_add(1, Ordering::SeqCst);
                    // Hold the flight open long enough that every other
                    // thread registers as a follower.
                    std::thread::sleep(Duration::from_millis(150));
                    Ok(payload(42.0))
                })
            }));
        }
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(executions.load(Ordering::SeqCst), 1, "exactly one leader");
        for (result, _) in &results {
            assert_eq!(result.as_ref().unwrap(), &payload(42.0));
        }
        assert_eq!(results.iter().filter(|(_, c)| !c).count(), 1);
        assert_eq!(table.executed_total(), 1);
        assert_eq!(table.coalesced_total(), 7);
        // The entry retired: a later request leads a fresh flight.
        let (_, coalesced) =
            table.run_or_wait("shared-key", &CancelToken::new(), || Ok(payload(1.0)));
        assert!(!coalesced);
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let table = Arc::new(FlightTable::new());
        let mut handles = Vec::new();
        for i in 0..4 {
            let table = table.clone();
            handles.push(std::thread::spawn(move || {
                table.run_or_wait(&format!("key-{i}"), &CancelToken::new(), || {
                    Ok(payload(i as f64))
                })
            }));
        }
        for h in handles {
            let (_, coalesced) = h.join().unwrap();
            assert!(!coalesced);
        }
        assert_eq!(table.executed_total(), 4);
        assert_eq!(table.coalesced_total(), 0);
    }

    #[test]
    fn followers_observe_leader_errors() {
        let table = Arc::new(FlightTable::new());
        let t2 = table.clone();
        let leader = std::thread::spawn(move || {
            t2.run_or_wait("bad", &CancelToken::new(), || {
                std::thread::sleep(Duration::from_millis(120));
                Err(StageError {
                    kind: StageErrorKind::Panic,
                    message: "boom".into(),
                })
            })
        });
        std::thread::sleep(Duration::from_millis(30));
        let (result, coalesced) =
            table.run_or_wait("bad", &CancelToken::new(), || unreachable!("follower"));
        assert!(coalesced);
        let err = result.unwrap_err();
        assert_eq!(err.kind, StageErrorKind::Panic);
        assert_eq!(err.message, "boom");
        leader.join().unwrap().0.unwrap_err();
    }

    #[test]
    fn cancelled_follower_gives_up_without_blocking_the_leader() {
        let table = Arc::new(FlightTable::new());
        let t2 = table.clone();
        let leader = std::thread::spawn(move || {
            t2.run_or_wait("slow", &CancelToken::new(), || {
                std::thread::sleep(Duration::from_millis(400));
                Ok(payload(5.0))
            })
        });
        std::thread::sleep(Duration::from_millis(30));
        let cancel = CancelToken::new();
        cancel.cancel();
        let t0 = std::time::Instant::now();
        let (result, coalesced) =
            table.run_or_wait("slow", &cancel, || unreachable!("follower"));
        assert!(coalesced);
        assert_eq!(result.unwrap_err().kind, StageErrorKind::Cancelled);
        assert!(t0.elapsed() < Duration::from_millis(350), "gave up promptly");
        // The leader still completes and retires its entry cleanly.
        let (result, _) = leader.join().unwrap();
        assert_eq!(result.unwrap(), payload(5.0));
        assert!(table.flights.lock().unwrap().is_empty());
    }
}
