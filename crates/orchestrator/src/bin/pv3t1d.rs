//! `pv3t1d` — the single entry point for reproducing the paper.
//!
//! ```text
//! pv3t1d run  <scenario.json> [--quick|--full] [--jobs N] [--results DIR]
//!                             [--no-cache] [--expect-cached]
//!                             [--manifest PATH]
//! pv3t1d plan <scenario.json> [--quick|--full] [--results DIR]
//! pv3t1d ls   [--results DIR]
//! pv3t1d gc   <scenario.json>... [--quick|--full] [--results DIR] [--dry-run]
//! ```
//!
//! Exit codes: `0` success; `1` at least one stage failed / timed out /
//! was skipped, or `--expect-cached` was violated; `2` usage, spec, or
//! I/O errors.

use orchestrator::{plan_scenario, run_scenario, ArtifactStore, RunOptions, Scenario};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
pv3t1d — declarative experiment DAG runner (3T1D cache reproduction)

USAGE:
    pv3t1d run  <scenario.json> [OPTIONS]    execute a scenario DAG
    pv3t1d plan <scenario.json> [OPTIONS]    show cache hits without running
    pv3t1d ls   [OPTIONS]                    list cached artifacts
    pv3t1d gc   <scenario.json>... [OPTIONS] drop cache entries unreachable
                                             from the given scenarios
    pv3t1d help                              this text

OPTIONS:
    --quick / --full     override the scenario's run scale
    --jobs <N>           concurrent stages (default 2)
    --results <DIR>      results directory (default results/)
    --no-cache           (run) execute every stage; still refresh the cache
    --expect-cached      (run) fail unless every stage is a cache hit
    --manifest <PATH>    (run) run-manifest path
                         (default <results>/<scenario>.run.json)
    --dry-run            (gc) report what would be removed, delete nothing
";

struct Cli {
    positional: Vec<PathBuf>,
    opts: RunOptions,
    expect_cached: bool,
    manifest: Option<PathBuf>,
    dry_run: bool,
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        positional: Vec::new(),
        opts: RunOptions {
            verbose: true,
            ..RunOptions::default()
        },
        expect_cached: false,
        manifest: None,
        dry_run: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value_of = |flag: &str| {
            it.next()
                .map(String::from)
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--quick" => cli.opts.scale_override = Some(bench_harness::RunScale::QUICK),
            "--full" => cli.opts.scale_override = Some(bench_harness::RunScale::FULL),
            "--jobs" => {
                cli.opts.jobs = value_of("--jobs")?
                    .parse::<usize>()
                    .map_err(|e| format!("--jobs: {e}"))?
                    .max(1);
            }
            "--results" => cli.opts.results_dir = PathBuf::from(value_of("--results")?),
            "--manifest" => cli.manifest = Some(PathBuf::from(value_of("--manifest")?)),
            "--no-cache" => cli.opts.use_cache = false,
            "--expect-cached" => cli.expect_cached = true,
            "--dry-run" => cli.dry_run = true,
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            path => cli.positional.push(PathBuf::from(path)),
        }
    }
    Ok(cli)
}

fn load(path: &Path) -> Result<Scenario, String> {
    Scenario::load(path).map_err(|e| format!("{}: {e}", path.display()))
}

fn cmd_run(cli: &Cli) -> Result<ExitCode, String> {
    let [path] = cli.positional.as_slice() else {
        return Err("run needs exactly one scenario file".into());
    };
    let sc = load(path)?;
    let summary = run_scenario(&sc, &cli.opts).map_err(|e| e.to_string())?;

    let manifest = cli
        .manifest
        .clone()
        .unwrap_or_else(|| cli.opts.results_dir.join(format!("{}.run.json", sc.name)));
    summary
        .write_to(&manifest)
        .map_err(|e| format!("writing {}: {e}", manifest.display()))?;

    let failed = summary.stages.iter().filter(|s| !s.status.is_ok()).count();
    println!(
        "scenario {}: {} stages — {} cached, {} ran, {} failed/skipped ({:.1}s)",
        summary.scenario,
        summary.stages.len(),
        summary.cache_hits,
        summary.executed,
        failed,
        summary.wall_seconds,
    );
    println!("fingerprint {}", summary.fingerprint());
    println!("manifest: {}", manifest.display());

    if !summary.ok() {
        for s in &summary.stages {
            if let Some(err) = match &s.status {
                orchestrator::StageStatus::Failed(m) => Some(m.clone()),
                orchestrator::StageStatus::TimedOut(l) => {
                    Some(format!("timed out after {l} seconds"))
                }
                orchestrator::StageStatus::Skipped(w) => Some(w.clone()),
                _ => None,
            } {
                eprintln!("error: stage {}: {err}", s.id);
            }
        }
        return Ok(ExitCode::from(1));
    }
    if cli.expect_cached && (summary.executed > 0 || summary.cache_misses > 0) {
        eprintln!(
            "error: --expect-cached, but {} stages executed ({} cache misses)",
            summary.executed, summary.cache_misses
        );
        return Ok(ExitCode::from(1));
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_plan(cli: &Cli) -> Result<ExitCode, String> {
    let [path] = cli.positional.as_slice() else {
        return Err("plan needs exactly one scenario file".into());
    };
    let sc = load(path)?;
    let plan = plan_scenario(&sc, &cli.opts).map_err(|e| e.to_string())?;
    let hits = plan.iter().filter(|p| p.cached).count();
    for p in &plan {
        let (tag, key) = match (&p.key, p.cached) {
            (Some(k), true) => ("cache", k.as_str()),
            (Some(k), false) => ("run", k.as_str()),
            (None, _) => ("run", "(key depends on uncached inputs)"),
        };
        println!("{:>8}  {:<24} {:<16} {key}", tag, p.id, p.kind);
    }
    println!(
        "plan {}: {hits}/{} stages cached, {} to run",
        sc.name,
        plan.len(),
        plan.len() - hits
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_ls(cli: &Cli) -> Result<ExitCode, String> {
    let store = ArtifactStore::new(cli.opts.results_dir.join("cas"));
    let rows = store.ls();
    let mut bytes = 0u64;
    for row in &rows {
        bytes += row.bytes;
        println!(
            "{}  {:<16} {:>10} B",
            row.key,
            row.kind.as_deref().unwrap_or("(corrupt)"),
            row.bytes
        );
    }
    println!(
        "{} artifacts, {} corrupt, {bytes} bytes in {}",
        rows.len(),
        rows.iter().filter(|r| r.kind.is_none()).count(),
        store.root().display()
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_gc(cli: &Cli) -> Result<ExitCode, String> {
    if cli.positional.is_empty() {
        return Err("gc needs at least one scenario file (its reachable keys are kept)".into());
    }
    let store = ArtifactStore::new(cli.opts.results_dir.join("cas"));
    let mut keep = std::collections::BTreeSet::new();
    for path in &cli.positional {
        let sc = load(path)?;
        for entry in plan_scenario(&sc, &cli.opts).map_err(|e| e.to_string())? {
            if let Some(key) = entry.key {
                keep.insert(key);
            }
        }
    }
    let report = store
        .gc_keep(&keep, cli.dry_run)
        .map_err(|e| format!("gc: {e}"))?;
    println!(
        "gc{}: kept {}, removed {}, freed {} bytes",
        if cli.dry_run { " (dry run)" } else { "" },
        report.kept,
        report.removed,
        report.bytes_freed
    );
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let cli = match parse_cli(rest) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    let result = match command.as_str() {
        "run" => cmd_run(&cli),
        "plan" => cmd_plan(&cli),
        "ls" => cmd_ls(&cli),
        "gc" => cmd_gc(&cli),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("error: unknown command {other:?}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}
