//! Declarative scenario specs: the JSON documents under `scenarios/`.
//!
//! A scenario names a DAG of experiment stages. The format is plain JSON
//! parsed with [`obs::Json`] (the workspace's zero-dependency parser):
//!
//! ```json
//! {
//!   "schema": 1,
//!   "name": "quick",
//!   "scale": "quick",
//!   "default_timeout_seconds": 600,
//!   "stages": [
//!     { "id": "chips_severe", "kind": "chip_campaign",
//!       "params": { "node": "32nm", "corner": "severe", "seed": 20245 } },
//!     { "id": "retention", "kind": "retention_map",
//!       "deps": ["chips_severe"] }
//!   ]
//! }
//! ```
//!
//! `scale` is `"quick"`, `"full"`, or an explicit object pinning all four
//! [`RunScale`] knobs; per-stage `timeout_seconds` overrides the scenario
//! default. [`Scenario::validate`] enforces the structural invariants
//! (unique filesystem-safe ids, known kinds, resolvable deps, acyclic
//! graph) and returns a deterministic topological order.
//!
//! # DVFS grids (schema 3)
//!
//! A scenario may declare a `(cell technology × operating point)` grid
//! and mark stages `"sweep": true`:
//!
//! ```json
//! {
//!   "schema": 3,
//!   "name": "dvfs",
//!   "technologies": ["3t1d", "6t-lv"],
//!   "operating_points": [
//!     { "vdd": 1.0, "freq_ghz": 4.3 },
//!     { "vdd": 0.9, "freq_ghz": 3.2, "temp_c": 60 }
//!   ],
//!   "stages": [
//!     { "id": "grid", "kind": "dvfs_point", "sweep": true },
//!     { "id": "frontier", "kind": "dvfs_frontier", "deps": ["grid"] }
//!   ]
//! }
//! ```
//!
//! [`Scenario::parse`] expands every sweep stage into one clone per grid
//! cell (`grid.3t1d.v1000f4300t80`, …) with `technology` / `vdd` /
//! `freq_ghz` / `temp_c` injected into its params — so the stage cache
//! key changes whenever any grid coordinate does — and rewrites
//! dependencies: a swept dependent follows its own grid cell, an
//! unswept dependent (the frontier) fans in over every clone.

use bench_harness::RunScale;
use obs::{Json, JsonError};
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;
use std::str::FromStr;
use vlsi::celltech::CellTechKind;
use vlsi::tech::{OperatingPoint, SIM_TEMPERATURE_C};
use vlsi::units::{Frequency, Voltage};

/// Current scenario schema version. Schema 2 added per-stage `retries`
/// and `backoff_ms`; schema 3 added the `technologies` ×
/// `operating_points` grid and per-stage `sweep`. Older documents still
/// parse (the new members default to an empty grid and no sweep), so
/// the version gates *documents that use the new members*, not old
/// documents.
pub const SCENARIO_SCHEMA: u64 = 3;

/// Oldest scenario schema still accepted by [`Scenario::parse`].
pub const SCENARIO_SCHEMA_MIN: u64 = 1;

/// Default re-launch delay when a stage declares `retries` without
/// `backoff_ms`.
pub const DEFAULT_BACKOFF_MS: f64 = 100.0;

/// Cap on per-stage `retries` — a fat-finger guard, not a tuning knob.
pub const MAX_RETRIES: u64 = 100;

/// Why a scenario could not be loaded or is not runnable.
#[derive(Debug)]
pub enum SpecError {
    /// The document is not valid JSON.
    Json(JsonError),
    /// The document is valid JSON but violates the scenario schema.
    Invalid(String),
    /// The scenario file could not be read.
    Io(std::io::Error),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Json(e) => write!(f, "scenario is not valid JSON: {e}"),
            SpecError::Invalid(msg) => write!(f, "invalid scenario: {msg}"),
            SpecError::Io(e) => write!(f, "cannot read scenario: {e}"),
        }
    }
}

impl std::error::Error for SpecError {}

/// One stage of a scenario DAG.
#[derive(Debug, Clone)]
pub struct StageSpec {
    /// Unique id within the scenario; also the progress-line label and a
    /// filename component, hence restricted to `[A-Za-z0-9._-]`.
    pub id: String,
    /// The stage kind — an entry of [`crate::stage::known_kinds`].
    pub kind: String,
    /// Kind-specific parameters (always an object; defaults to empty).
    pub params: Json,
    /// Ids of stages whose payloads this stage consumes.
    pub deps: Vec<String>,
    /// Wall-clock budget for this stage, overriding the scenario default.
    pub timeout_seconds: Option<f64>,
    /// How many times a failed or timed-out attempt is re-launched
    /// before the failure is final (0 = fail on the first attempt, the
    /// schema-1 behavior). Retries are an *execution* policy: they are
    /// deliberately excluded from the stage cache key.
    pub retries: u32,
    /// Delay before each re-launch, in milliseconds.
    pub backoff_ms: f64,
    /// Whether this stage fans out across the scenario's
    /// `(technology × operating point)` grid. Always `false` after
    /// [`Scenario::expand_grid`] — the expansion consumes the flag.
    pub sweep: bool,
}

impl StageSpec {
    /// A dependency-free stage with empty params (builder for tests and
    /// programmatic scenarios).
    pub fn new(id: &str, kind: &str) -> Self {
        Self {
            id: id.to_string(),
            kind: kind.to_string(),
            params: Json::object(),
            deps: Vec::new(),
            timeout_seconds: None,
            retries: 0,
            backoff_ms: DEFAULT_BACKOFF_MS,
            sweep: false,
        }
    }

    /// Adds dependencies (builder style).
    pub fn with_deps(mut self, deps: &[&str]) -> Self {
        self.deps = deps.iter().map(|d| d.to_string()).collect();
        self
    }

    /// Sets one param (builder style).
    pub fn with_param(mut self, key: &str, value: Json) -> Self {
        self.params.insert(key, value);
        self
    }

    /// Sets the per-stage timeout (builder style).
    pub fn with_timeout(mut self, seconds: f64) -> Self {
        self.timeout_seconds = Some(seconds);
        self
    }

    /// Sets the retry budget and backoff (builder style).
    pub fn with_retries(mut self, retries: u32, backoff_ms: f64) -> Self {
        self.retries = retries;
        self.backoff_ms = backoff_ms;
        self
    }

    /// Marks this stage for grid fan-out (builder style); pair with
    /// [`Scenario::expand_grid`].
    pub fn with_sweep(mut self) -> Self {
        self.sweep = true;
        self
    }
}

/// A parsed scenario: a named DAG of stages at one run scale.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (run-manifest filename component).
    pub name: String,
    /// The run scale every stage executes at.
    pub scale: RunScale,
    /// Default per-stage wall-clock budget, when set.
    pub default_timeout_seconds: Option<f64>,
    /// Cell technologies of the sweep grid (empty when the scenario has
    /// no grid).
    pub technologies: Vec<CellTechKind>,
    /// DVFS operating points of the sweep grid.
    pub operating_points: Vec<OperatingPoint>,
    /// The stages, in document order.
    pub stages: Vec<StageSpec>,
}

impl Scenario {
    /// An empty scenario at a scale (builder for tests and programmatic
    /// use).
    pub fn new(name: &str, scale: RunScale) -> Self {
        Self {
            name: name.to_string(),
            scale,
            default_timeout_seconds: None,
            technologies: Vec::new(),
            operating_points: Vec::new(),
            stages: Vec::new(),
        }
    }

    /// Parses a scenario document.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        let v = Json::parse(text).map_err(SpecError::Json)?;
        let invalid = |msg: String| SpecError::Invalid(msg);

        let schema = v
            .get("schema")
            .and_then(Json::as_u64)
            .ok_or_else(|| invalid("missing numeric \"schema\"".into()))?;
        if !(SCENARIO_SCHEMA_MIN..=SCENARIO_SCHEMA).contains(&schema) {
            return Err(invalid(format!(
                "unsupported scenario schema {schema} \
                 (expected {SCENARIO_SCHEMA_MIN}..={SCENARIO_SCHEMA})"
            )));
        }
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| invalid("missing string \"name\"".into()))?
            .to_string();
        let scale = match v.get("scale") {
            None => RunScale::FULL,
            Some(s) => parse_scale(s)?,
        };
        let default_timeout_seconds = match v.get("default_timeout_seconds") {
            None | Some(Json::Null) => None,
            Some(t) => Some(parse_timeout(t, "default_timeout_seconds")?),
        };
        let technologies = parse_technologies(&v)?;
        let operating_points = parse_operating_points(&v)?;
        let stage_values = v
            .get("stages")
            .and_then(Json::as_arr)
            .ok_or_else(|| invalid("missing \"stages\" array".into()))?;
        let mut stages = Vec::with_capacity(stage_values.len());
        for (i, sv) in stage_values.iter().enumerate() {
            stages.push(parse_stage(sv, i)?);
        }
        let mut scenario = Self {
            name,
            scale,
            default_timeout_seconds,
            technologies,
            operating_points,
            stages,
        };
        scenario.expand_grid()?;
        Ok(scenario)
    }

    /// Reads and parses a scenario file.
    pub fn load(path: &Path) -> Result<Self, SpecError> {
        let text = std::fs::read_to_string(path).map_err(SpecError::Io)?;
        Self::parse(&text)
    }

    /// Checks every structural invariant and returns the stages' indices
    /// in a deterministic topological order (Kahn's algorithm, breaking
    /// ties by document order).
    pub fn validate(&self) -> Result<Vec<usize>, SpecError> {
        let invalid = |msg: String| SpecError::Invalid(msg);
        if self.name.is_empty() || !is_safe_id(&self.name) {
            return Err(invalid(format!(
                "scenario name {:?} must be non-empty [A-Za-z0-9._-]",
                self.name
            )));
        }
        let mut index_of: BTreeMap<&str, usize> = BTreeMap::new();
        for (i, s) in self.stages.iter().enumerate() {
            if s.id.is_empty() || !is_safe_id(&s.id) {
                return Err(invalid(format!(
                    "stage id {:?} must be non-empty [A-Za-z0-9._-]",
                    s.id
                )));
            }
            if index_of.insert(&s.id, i).is_some() {
                return Err(invalid(format!("duplicate stage id {:?}", s.id)));
            }
            if !crate::stage::is_known(&s.kind) {
                return Err(invalid(format!(
                    "stage {:?} has unknown kind {:?} (known: {})",
                    s.id,
                    s.kind,
                    crate::stage::known_kinds().join(", ")
                )));
            }
            if !matches!(s.params, Json::Obj(_)) {
                return Err(invalid(format!("stage {:?} params must be an object", s.id)));
            }
            // Builder-constructed scenarios bypass parse_stage, so the
            // retry knobs are re-checked here.
            if u64::from(s.retries) > MAX_RETRIES {
                return Err(invalid(format!(
                    "stage {:?} retries must be <= {MAX_RETRIES}",
                    s.id
                )));
            }
            if !s.backoff_ms.is_finite() || s.backoff_ms < 0.0 {
                return Err(invalid(format!(
                    "stage {:?} backoff_ms must be a finite number >= 0",
                    s.id
                )));
            }
            if s.sweep {
                return Err(invalid(format!(
                    "stage {:?} is marked sweep but the grid was never \
                     expanded (call expand_grid before validate)",
                    s.id
                )));
            }
        }
        // Resolve deps and build in/out degree tables.
        let n = self.stages.len();
        let mut indegree = vec![0usize; n];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, s) in self.stages.iter().enumerate() {
            for d in &s.deps {
                let &j = index_of.get(d.as_str()).ok_or_else(|| {
                    invalid(format!("stage {:?} depends on unknown stage {:?}", s.id, d))
                })?;
                if j == i {
                    return Err(invalid(format!("stage {:?} depends on itself", s.id)));
                }
                indegree[i] += 1;
                dependents[j].push(i);
            }
        }
        // Kahn's algorithm; the worklist is kept sorted by document
        // order so the returned order is deterministic.
        let mut order = Vec::with_capacity(n);
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        while let Some(&i) = ready.first() {
            ready.remove(0);
            order.push(i);
            for &dep in &dependents[i] {
                indegree[dep] -= 1;
                if indegree[dep] == 0 {
                    let pos = ready.partition_point(|&x| x < dep);
                    ready.insert(pos, dep);
                }
            }
        }
        if order.len() != n {
            let stuck: Vec<&str> = (0..n)
                .filter(|&i| indegree[i] > 0)
                .map(|i| self.stages[i].id.as_str())
                .collect();
            return Err(invalid(format!(
                "dependency cycle through: {}",
                stuck.join(", ")
            )));
        }
        Ok(order)
    }

    /// Expands every `sweep: true` stage into one clone per
    /// `(technology, operating point)` grid cell.
    ///
    /// A clone's id is `<id>.<tech>.<op-slug>` (all `[A-Za-z0-9._-]`,
    /// so still a safe id) and its params gain `technology`, `vdd`,
    /// `freq_ghz`, and `temp_c` — since params are part of the stage
    /// fingerprint, two cells differing in any coordinate can never
    /// share a cached artifact. Dependencies are rewritten so that a
    /// swept stage depending on a swept stage follows its own grid
    /// cell, while an unswept stage depending on a swept stage (a
    /// frontier / report join) depends on *every* clone.
    ///
    /// [`Scenario::parse`] calls this automatically; builder-constructed
    /// scenarios using [`StageSpec::with_sweep`] must call it before
    /// [`Scenario::validate`]. Idempotent once expanded (clones carry
    /// `sweep: false`).
    pub fn expand_grid(&mut self) -> Result<(), SpecError> {
        let invalid = |msg: String| SpecError::Invalid(msg);
        if !self.stages.iter().any(|s| s.sweep) {
            return Ok(());
        }
        if self.technologies.is_empty() || self.operating_points.is_empty() {
            return Err(invalid(
                "sweep stages need non-empty \"technologies\" and \
                 \"operating_points\" grids"
                    .into(),
            ));
        }
        let swept: Vec<String> = self
            .stages
            .iter()
            .filter(|s| s.sweep)
            .map(|s| s.id.clone())
            .collect();
        let cell_ids = |base: &str| -> Vec<String> {
            let mut ids = Vec::new();
            for kind in &self.technologies {
                for op in &self.operating_points {
                    ids.push(format!("{base}.{}.{}", kind.slug(), op.slug()));
                }
            }
            ids
        };
        let mut out = Vec::with_capacity(self.stages.len());
        for s in &self.stages {
            if !s.sweep {
                // An unswept dependent of a swept stage joins over the
                // whole grid.
                let mut deps = Vec::new();
                for d in &s.deps {
                    if swept.contains(d) {
                        deps.extend(cell_ids(d));
                    } else {
                        deps.push(d.clone());
                    }
                }
                out.push(StageSpec {
                    deps,
                    ..s.clone()
                });
                continue;
            }
            for kind in &self.technologies {
                for op in &self.operating_points {
                    let suffix = format!("{}.{}", kind.slug(), op.slug());
                    let mut clone = s.clone();
                    clone.sweep = false;
                    clone.id = format!("{}.{suffix}", s.id);
                    clone.params.insert("technology", Json::Str(kind.slug().to_string()));
                    clone.params.insert("vdd", Json::Num(op.vdd.volts()));
                    clone.params.insert("freq_ghz", Json::Num(op.freq.ghz()));
                    clone.params.insert("temp_c", Json::Num(op.temp_c));
                    clone.deps = s
                        .deps
                        .iter()
                        .map(|d| {
                            if swept.contains(d) {
                                format!("{d}.{suffix}")
                            } else {
                                d.clone()
                            }
                        })
                        .collect();
                    out.push(clone);
                }
            }
        }
        self.stages = out;
        Ok(())
    }
}

/// Whether a string is safe as a filename component / stage id.
fn is_safe_id(s: &str) -> bool {
    !s.starts_with('.')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
}

/// Parses the `scale` member: `"quick"`, `"full"`, or an explicit
/// object with all four knobs.
fn parse_scale(v: &Json) -> Result<RunScale, SpecError> {
    match v {
        Json::Str(s) if s == "quick" => Ok(RunScale::QUICK),
        Json::Str(s) if s == "full" => Ok(RunScale::FULL),
        Json::Obj(_) => {
            let field = |key: &str| {
                v.get(key).and_then(Json::as_u64).ok_or_else(|| {
                    SpecError::Invalid(format!("scale object missing integer {key:?}"))
                })
            };
            Ok(RunScale {
                mc_chips: field("mc_chips")? as u32,
                sim_chips: field("sim_chips")? as u32,
                instructions: field("instructions")?,
                warmup: field("warmup")?,
            })
        }
        _ => Err(SpecError::Invalid(
            "scale must be \"quick\", \"full\", or an object".into(),
        )),
    }
}

/// Renders a scale as the explicit-object form (used in cache keys and
/// run manifests so a scale change is visible, not just implied).
pub fn scale_to_json(s: RunScale) -> Json {
    let mut o = Json::object();
    o.insert("mc_chips", Json::Num(f64::from(s.mc_chips)));
    o.insert("sim_chips", Json::Num(f64::from(s.sim_chips)));
    o.insert("instructions", Json::Num(s.instructions as f64));
    o.insert("warmup", Json::Num(s.warmup as f64));
    o
}

/// Cap on `operating_points` entries — a fat-finger guard against
/// accidentally fanning a scenario into thousands of stages.
pub const MAX_OPERATING_POINTS: usize = 32;

/// Parses the optional `technologies` array (distinct
/// [`CellTechKind`] slugs).
fn parse_technologies(v: &Json) -> Result<Vec<CellTechKind>, SpecError> {
    let invalid = |msg: String| SpecError::Invalid(msg);
    let Some(items) = v.get("technologies") else {
        return Ok(Vec::new());
    };
    let items = items
        .as_arr()
        .ok_or_else(|| invalid("\"technologies\" must be an array of strings".into()))?;
    let mut kinds = Vec::with_capacity(items.len());
    for item in items {
        let slug = item
            .as_str()
            .ok_or_else(|| invalid("\"technologies\" must be an array of strings".into()))?;
        let kind = CellTechKind::from_str(slug).map_err(invalid)?;
        if kinds.contains(&kind) {
            return Err(invalid(format!("duplicate technology {slug:?}")));
        }
        kinds.push(kind);
    }
    Ok(kinds)
}

/// Parses the optional `operating_points` array: objects with finite
/// `vdd` (volts) and `freq_ghz`, plus an optional `temp_c` defaulting
/// to the paper's 80 °C corner. Points must be distinct (by slug —
/// two points the grid cannot tell apart would collide as stage ids).
fn parse_operating_points(v: &Json) -> Result<Vec<OperatingPoint>, SpecError> {
    let invalid = |msg: String| SpecError::Invalid(msg);
    let Some(items) = v.get("operating_points") else {
        return Ok(Vec::new());
    };
    let items = items
        .as_arr()
        .ok_or_else(|| invalid("\"operating_points\" must be an array of objects".into()))?;
    if items.len() > MAX_OPERATING_POINTS {
        return Err(invalid(format!(
            "at most {MAX_OPERATING_POINTS} operating_points (got {})",
            items.len()
        )));
    }
    let mut points: Vec<OperatingPoint> = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        if !matches!(item, Json::Obj(_)) {
            return Err(invalid(format!("operating_points[{i}] must be an object")));
        }
        let num = |key: &str| -> Result<Option<f64>, SpecError> {
            match item.get(key) {
                None => Ok(None),
                Some(n) => match n.as_f64() {
                    Some(x) if x.is_finite() => Ok(Some(x)),
                    _ => Err(invalid(format!(
                        "operating_points[{i}].{key} must be a finite number"
                    ))),
                },
            }
        };
        let vdd = num("vdd")?.ok_or_else(|| {
            invalid(format!("operating_points[{i}] missing number \"vdd\""))
        })?;
        let freq_ghz = num("freq_ghz")?.ok_or_else(|| {
            invalid(format!("operating_points[{i}] missing number \"freq_ghz\""))
        })?;
        let temp_c = num("temp_c")?.unwrap_or(SIM_TEMPERATURE_C);
        if !(0.1..=2.0).contains(&vdd) {
            return Err(invalid(format!(
                "operating_points[{i}].vdd = {vdd} out of range [0.1, 2]"
            )));
        }
        if !(0.01..=20.0).contains(&freq_ghz) {
            return Err(invalid(format!(
                "operating_points[{i}].freq_ghz = {freq_ghz} out of range [0.01, 20]"
            )));
        }
        if !(-55.0..=150.0).contains(&temp_c) {
            return Err(invalid(format!(
                "operating_points[{i}].temp_c = {temp_c} out of range [-55, 150]"
            )));
        }
        let op = OperatingPoint {
            vdd: Voltage::new(vdd),
            freq: Frequency::from_ghz(freq_ghz),
            temp_c,
        };
        if points.iter().any(|p| p.slug() == op.slug()) {
            return Err(invalid(format!(
                "operating_points[{i}] duplicates point {}",
                op.slug()
            )));
        }
        points.push(op);
    }
    Ok(points)
}

fn parse_timeout(v: &Json, what: &str) -> Result<f64, SpecError> {
    match v.as_f64() {
        Some(t) if t.is_finite() && t > 0.0 => Ok(t),
        _ => Err(SpecError::Invalid(format!(
            "{what} must be a positive number of seconds"
        ))),
    }
}

fn parse_stage(v: &Json, index: usize) -> Result<StageSpec, SpecError> {
    let invalid = |msg: String| SpecError::Invalid(msg);
    if !matches!(v, Json::Obj(_)) {
        return Err(invalid(format!("stages[{index}] must be an object")));
    }
    let id = v
        .get("id")
        .and_then(Json::as_str)
        .ok_or_else(|| invalid(format!("stages[{index}] missing string \"id\"")))?
        .to_string();
    let kind = v
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| invalid(format!("stage {id:?} missing string \"kind\"")))?
        .to_string();
    let params = match v.get("params") {
        None => Json::object(),
        Some(p @ Json::Obj(_)) => p.clone(),
        Some(_) => return Err(invalid(format!("stage {id:?} params must be an object"))),
    };
    let deps = match v.get("deps") {
        None => Vec::new(),
        Some(Json::Arr(items)) => {
            let mut deps = Vec::with_capacity(items.len());
            for item in items {
                deps.push(
                    item.as_str()
                        .ok_or_else(|| invalid(format!("stage {id:?} deps must be strings")))?
                        .to_string(),
                );
            }
            deps
        }
        Some(_) => return Err(invalid(format!("stage {id:?} deps must be an array"))),
    };
    let timeout_seconds = match v.get("timeout_seconds") {
        None | Some(Json::Null) => None,
        Some(t) => Some(parse_timeout(t, &format!("stage {id:?} timeout_seconds"))?),
    };
    let retries = match v.get("retries") {
        None | Some(Json::Null) => 0,
        Some(r) => match r.as_u64() {
            Some(n) if n <= MAX_RETRIES => n as u32,
            _ => {
                return Err(invalid(format!(
                    "stage {id:?} retries must be an integer in 0..={MAX_RETRIES}"
                )))
            }
        },
    };
    let backoff_ms = match v.get("backoff_ms") {
        None | Some(Json::Null) => DEFAULT_BACKOFF_MS,
        Some(b) => match b.as_f64() {
            Some(ms) if ms.is_finite() && ms >= 0.0 => ms,
            _ => {
                return Err(invalid(format!(
                    "stage {id:?} backoff_ms must be a finite number >= 0"
                )))
            }
        },
    };
    let sweep = match v.get("sweep") {
        None | Some(Json::Null) => false,
        Some(s) => s
            .as_bool()
            .ok_or_else(|| invalid(format!("stage {id:?} sweep must be a boolean")))?,
    };
    Ok(StageSpec {
        id,
        kind,
        params,
        deps,
        timeout_seconds,
        retries,
        backoff_ms,
        sweep,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal(stages: &str) -> String {
        format!(
            r#"{{"schema": 1, "name": "t", "scale": "quick", "stages": [{stages}]}}"#
        )
    }

    #[test]
    fn parses_a_full_document() {
        let text = r#"{
            "schema": 1,
            "name": "quick",
            "scale": {"mc_chips": 8, "sim_chips": 2, "instructions": 1000, "warmup": 500},
            "default_timeout_seconds": 60,
            "stages": [
                {"id": "chips", "kind": "chip_campaign",
                 "params": {"node": "32nm", "corner": "severe", "seed": 7}},
                {"id": "map", "kind": "retention_map", "deps": ["chips"],
                 "timeout_seconds": 5}
            ]
        }"#;
        let sc = Scenario::parse(text).unwrap();
        assert_eq!(sc.name, "quick");
        assert_eq!(sc.scale.mc_chips, 8);
        assert_eq!(sc.default_timeout_seconds, Some(60.0));
        assert_eq!(sc.stages.len(), 2);
        assert_eq!(sc.stages[1].deps, vec!["chips".to_string()]);
        assert_eq!(sc.stages[1].timeout_seconds, Some(5.0));
        let order = sc.validate().unwrap();
        assert_eq!(order, vec![0, 1]);
    }

    #[test]
    fn named_scales_resolve() {
        let q = Scenario::parse(&minimal(r#"{"id": "a", "kind": "sleep"}"#)).unwrap();
        assert_eq!(q.scale, RunScale::QUICK);
        let f = Scenario::parse(
            r#"{"schema": 1, "name": "t", "scale": "full", "stages": []}"#,
        )
        .unwrap();
        assert_eq!(f.scale, RunScale::FULL);
        // Absent scale defaults to the full paper-reproduction scale.
        let d = Scenario::parse(r#"{"schema": 1, "name": "t", "stages": []}"#).unwrap();
        assert_eq!(d.scale, RunScale::FULL);
    }

    #[test]
    fn structural_errors_are_rejected() {
        // Duplicate ids.
        let dup = Scenario::parse(&minimal(
            r#"{"id": "a", "kind": "sleep"}, {"id": "a", "kind": "sleep"}"#,
        ))
        .unwrap();
        assert!(dup.validate().unwrap_err().to_string().contains("duplicate"));

        // Unknown kind.
        let kind = Scenario::parse(&minimal(r#"{"id": "a", "kind": "nope"}"#)).unwrap();
        assert!(kind.validate().unwrap_err().to_string().contains("unknown kind"));

        // Unknown dep.
        let dep = Scenario::parse(&minimal(
            r#"{"id": "a", "kind": "sleep", "deps": ["ghost"]}"#,
        ))
        .unwrap();
        assert!(dep.validate().unwrap_err().to_string().contains("ghost"));

        // Unsafe id (path separator).
        let mut bad = Scenario::new("t", RunScale::QUICK);
        bad.stages.push(StageSpec::new("../evil", "sleep"));
        assert!(bad.validate().is_err());

        // Bad schema / missing stages.
        assert!(Scenario::parse(r#"{"schema": 9, "name": "t", "stages": []}"#).is_err());
        assert!(Scenario::parse(r#"{"schema": 4, "name": "t", "stages": []}"#).is_err());
        assert!(Scenario::parse(r#"{"schema": 0, "name": "t", "stages": []}"#).is_err());
        assert!(Scenario::parse(r#"{"schema": 1, "name": "t"}"#).is_err());
        assert!(Scenario::parse("not json").is_err());
    }

    #[test]
    fn schema_2_retry_knobs_parse_and_schema_1_defaults() {
        let sc = Scenario::parse(
            r#"{"schema": 2, "name": "t", "scale": "quick", "stages": [
                {"id": "a", "kind": "sleep", "retries": 3, "backoff_ms": 25},
                {"id": "b", "kind": "sleep", "retries": 2},
                {"id": "c", "kind": "sleep"}
            ]}"#,
        )
        .unwrap();
        assert_eq!(sc.stages[0].retries, 3);
        assert_eq!(sc.stages[0].backoff_ms, 25.0);
        assert_eq!(sc.stages[1].retries, 2);
        assert_eq!(sc.stages[1].backoff_ms, DEFAULT_BACKOFF_MS);
        assert_eq!(sc.stages[2].retries, 0);
        sc.validate().unwrap();

        // Schema-1 documents still parse, with the schema-1 behavior.
        let old = Scenario::parse(&minimal(r#"{"id": "a", "kind": "sleep"}"#)).unwrap();
        assert_eq!(old.stages[0].retries, 0);
        assert_eq!(old.stages[0].backoff_ms, DEFAULT_BACKOFF_MS);
    }

    #[test]
    fn bad_retry_knobs_are_rejected() {
        let huge = minimal(r#"{"id": "a", "kind": "sleep", "retries": 1000000000}"#);
        assert!(Scenario::parse(&huge).unwrap_err().to_string().contains("retries"));
        let frac = minimal(r#"{"id": "a", "kind": "sleep", "retries": 1.5}"#);
        assert!(Scenario::parse(&frac).is_err());
        let neg = minimal(r#"{"id": "a", "kind": "sleep", "backoff_ms": -5}"#);
        assert!(Scenario::parse(&neg).unwrap_err().to_string().contains("backoff_ms"));

        // validate() re-checks builder-constructed scenarios.
        let mut sc = Scenario::new("t", RunScale::QUICK);
        sc.stages.push(StageSpec::new("a", "sleep").with_retries(1, f64::NAN));
        assert!(sc.validate().unwrap_err().to_string().contains("backoff_ms"));
    }

    fn dvfs_doc(points: &str) -> String {
        format!(
            r#"{{"schema": 3, "name": "dvfs", "scale": "quick",
                "technologies": ["3t1d", "6t-lv"],
                "operating_points": [{points}],
                "stages": [
                    {{"id": "grid", "kind": "dvfs_point", "sweep": true,
                      "params": {{"corner": "typical", "chips": 3}}}},
                    {{"id": "frontier", "kind": "dvfs_frontier", "deps": ["grid"]}}
                ]}}"#
        )
    }

    #[test]
    fn sweep_stages_fan_out_over_the_grid() {
        let sc = Scenario::parse(&dvfs_doc(
            r#"{"vdd": 1.0, "freq_ghz": 4.3}, {"vdd": 0.9, "freq_ghz": 3.2, "temp_c": 60}"#,
        ))
        .unwrap();
        assert_eq!(sc.technologies.len(), 2);
        assert_eq!(sc.operating_points.len(), 2);
        // 2 technologies × 2 points + the unswept frontier.
        assert_eq!(sc.stages.len(), 5);
        let ids: Vec<&str> = sc.stages.iter().map(|s| s.id.as_str()).collect();
        assert!(ids.contains(&"grid.3t1d.v1000f4300t80"), "{ids:?}");
        assert!(ids.contains(&"grid.6t-lv.v900f3200t60"), "{ids:?}");
        // Every clone carries its coordinates in params (hence in the
        // stage cache key) and keeps the stage's own params.
        let cell = sc
            .stages
            .iter()
            .find(|s| s.id == "grid.6t-lv.v900f3200t60")
            .unwrap();
        assert_eq!(cell.params.get("technology").and_then(Json::as_str), Some("6t-lv"));
        assert_eq!(cell.params.get("vdd").and_then(Json::as_f64), Some(0.9));
        assert_eq!(cell.params.get("freq_ghz").and_then(Json::as_f64), Some(3.2));
        assert_eq!(cell.params.get("temp_c").and_then(Json::as_f64), Some(60.0));
        assert_eq!(cell.params.get("corner").and_then(Json::as_str), Some("typical"));
        assert!(!cell.sweep);
        // The unswept frontier depends on every clone.
        let frontier = sc.stages.iter().find(|s| s.id == "frontier").unwrap();
        assert_eq!(frontier.deps.len(), 4);
        assert!(frontier.deps.contains(&"grid.3t1d.v900f3200t60".to_string()));
        // And the expanded DAG is valid.
        sc.validate().unwrap();
    }

    #[test]
    fn changing_one_grid_coordinate_changes_the_stage_params() {
        let a = Scenario::parse(&dvfs_doc(r#"{"vdd": 1.0, "freq_ghz": 4.3}"#)).unwrap();
        let b = Scenario::parse(&dvfs_doc(r#"{"vdd": 0.9, "freq_ghz": 4.3}"#)).unwrap();
        // Same kinds, same document — only vdd moved. Both the id and
        // the params (the cache-key input) must differ.
        assert_ne!(a.stages[0].id, b.stages[0].id);
        assert_ne!(a.stages[0].params.render(), b.stages[0].params.render());
        // And therefore the content-addressed stage cache key differs:
        // a cached artifact can never be served across grid cells.
        let key = |s: &StageSpec| {
            crate::sched::stage_key(&s.kind, &s.params, RunScale::QUICK, &BTreeMap::new())
        };
        assert_ne!(key(&a.stages[0]), key(&b.stages[0]));
    }

    #[test]
    fn swept_dependents_follow_their_own_grid_cell() {
        let mut sc = Scenario::new("t", RunScale::QUICK);
        sc.technologies = vec![CellTechKind::T3t1d];
        sc.operating_points = vec![
            OperatingPoint {
                vdd: Voltage::new(1.0),
                freq: Frequency::from_ghz(4.3),
                temp_c: 80.0,
            },
            OperatingPoint {
                vdd: Voltage::new(0.9),
                freq: Frequency::from_ghz(3.2),
                temp_c: 80.0,
            },
        ];
        sc.stages.push(StageSpec::new("a", "sleep").with_sweep());
        sc.stages
            .push(StageSpec::new("b", "sleep").with_deps(&["a"]).with_sweep());
        sc.expand_grid().unwrap();
        assert_eq!(sc.stages.len(), 4);
        let b0 = sc
            .stages
            .iter()
            .find(|s| s.id == "b.3t1d.v900f3200t80")
            .unwrap();
        assert_eq!(b0.deps, vec!["a.3t1d.v900f3200t80".to_string()]);
        sc.validate().unwrap();
        // Idempotent: a second expansion is a no-op.
        let before = sc.stages.len();
        sc.expand_grid().unwrap();
        assert_eq!(sc.stages.len(), before);
    }

    #[test]
    fn bad_grids_are_rejected() {
        // Sweep without a grid.
        let no_grid = r#"{"schema": 3, "name": "t", "scale": "quick", "stages": [
            {"id": "a", "kind": "sleep", "sweep": true}]}"#;
        let err = Scenario::parse(no_grid).unwrap_err().to_string();
        assert!(err.contains("technologies"), "{err}");

        // Unknown technology slug, duplicate technology, malformed points.
        for (tag, doc) in [
            (
                "unknown tech",
                r#"{"schema": 3, "name": "t", "technologies": ["5t"], "stages": []}"#,
            ),
            (
                "dup tech",
                r#"{"schema": 3, "name": "t", "technologies": ["3t1d", "3t1d"], "stages": []}"#,
            ),
            (
                "missing vdd",
                r#"{"schema": 3, "name": "t", "operating_points": [{"freq_ghz": 4.3}], "stages": []}"#,
            ),
            (
                "vdd range",
                r#"{"schema": 3, "name": "t", "operating_points": [{"vdd": 9.0, "freq_ghz": 4.3}], "stages": []}"#,
            ),
            (
                "dup point",
                r#"{"schema": 3, "name": "t", "operating_points": [
                    {"vdd": 1.0, "freq_ghz": 4.3}, {"vdd": 1.0, "freq_ghz": 4.3}], "stages": []}"#,
            ),
            (
                "sweep type",
                r#"{"schema": 3, "name": "t", "stages": [{"id": "a", "kind": "sleep", "sweep": 1}]}"#,
            ),
        ] {
            assert!(Scenario::parse(doc).is_err(), "{tag}");
        }

        // A builder scenario that skipped expand_grid fails validation.
        let mut sc = Scenario::new("t", RunScale::QUICK);
        sc.stages.push(StageSpec::new("a", "sleep").with_sweep());
        let err = sc.validate().unwrap_err().to_string();
        assert!(err.contains("expand_grid"), "{err}");
    }

    #[test]
    fn cycles_are_detected() {
        let sc = Scenario::parse(&minimal(
            r#"{"id": "a", "kind": "sleep", "deps": ["c"]},
               {"id": "b", "kind": "sleep", "deps": ["a"]},
               {"id": "c", "kind": "sleep", "deps": ["b"]}"#,
        ))
        .unwrap();
        let err = sc.validate().unwrap_err().to_string();
        assert!(err.contains("cycle"), "{err}");
        // Self-loop.
        let sc = Scenario::parse(&minimal(
            r#"{"id": "a", "kind": "sleep", "deps": ["a"]}"#,
        ))
        .unwrap();
        assert!(sc.validate().is_err());
    }

    #[test]
    fn topological_order_is_deterministic_and_respects_deps() {
        let sc = Scenario::parse(&minimal(
            r#"{"id": "z_last", "kind": "sleep", "deps": ["m1", "m2"]},
               {"id": "m1", "kind": "sleep", "deps": ["root"]},
               {"id": "m2", "kind": "sleep", "deps": ["root"]},
               {"id": "root", "kind": "sleep"}"#,
        ))
        .unwrap();
        let order = sc.validate().unwrap();
        let ids: Vec<&str> = order.iter().map(|&i| sc.stages[i].id.as_str()).collect();
        assert_eq!(ids, vec!["root", "m1", "m2", "z_last"]);
        assert_eq!(order, sc.validate().unwrap());
    }
}
