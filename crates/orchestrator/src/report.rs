//! The `pv3t1d report` renderer: turns a run manifest (and optionally a
//! Chrome trace captured with `run --trace`) into a human-readable
//! markdown digest — stage table, scheduler metrics, top spans by
//! accumulated wall time, and domain-event counts.
//!
//! The renderer is read-only and format-tolerant: it works off the
//! parsed JSON documents, skipping sections whose members are absent,
//! so it can digest manifests from older runs as schemas evolve.

use obs::Json;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders a run-manifest document (the JSON written by
/// `pv3t1d run`) as markdown. `trace` adds the trace sections when a
/// matching trace document is supplied.
pub fn render(manifest: &Json, trace: Option<&Json>) -> String {
    let mut out = String::new();
    render_manifest(&mut out, manifest);
    if let Some(doc) = trace {
        render_trace(&mut out, doc);
    }
    out
}

fn render_manifest(out: &mut String, manifest: &Json) {
    let results = manifest.get("results");
    let scenario = results
        .and_then(|r| r.get("scenario"))
        .and_then(Json::as_str)
        .unwrap_or("?");
    let ok = manifest.get("ok").and_then(Json::as_bool).unwrap_or(false);
    let _ = writeln!(out, "# Run report: {scenario}\n");
    let _ = writeln!(out, "- status: **{}**", if ok { "ok" } else { "FAILED" });
    if let Some(fp) = manifest.get("fingerprint").and_then(Json::as_str) {
        let _ = writeln!(out, "- fingerprint: `{fp}`");
    }

    let execution = manifest.get("execution");
    if let Some(exec) = execution {
        let n = |key: &str| exec.get(key).and_then(Json::as_f64).unwrap_or(0.0);
        let _ = writeln!(
            out,
            "- execution: {:.2} s wall, {} jobs, {} cached / {} executed",
            n("wall_seconds"),
            n("jobs") as u64,
            n("cache_hits") as u64,
            n("executed") as u64,
        );
    }
    let _ = writeln!(out);

    // Stage table: deterministic facts from `results`, timing from
    // `execution.stages`.
    if let Some(stages) = results.and_then(|r| r.get("stages")).and_then(Json::as_obj) {
        let exec_stages = execution.and_then(|e| e.get("stages"));
        let _ = writeln!(out, "## Stages\n");
        let _ = writeln!(out, "| stage | kind | status | source | seconds |");
        let _ = writeln!(out, "|---|---|---|---|---:|");
        for (id, s) in stages {
            let kind = s.get("kind").and_then(Json::as_str).unwrap_or("?");
            let status = s.get("status").and_then(Json::as_str).unwrap_or("?");
            let detail = exec_stages.and_then(|e| e.get(id));
            let source = detail
                .and_then(|d| d.get("source"))
                .and_then(Json::as_str)
                .unwrap_or("-");
            let seconds = detail
                .and_then(|d| d.get("seconds"))
                .and_then(Json::as_f64)
                .unwrap_or(0.0);
            let _ = writeln!(out, "| {id} | {kind} | {status} | {source} | {seconds:.3} |");
        }
        let _ = writeln!(out);
    }

    if let Some(errors) = manifest.get("errors").and_then(Json::as_obj) {
        if !errors.is_empty() {
            let _ = writeln!(out, "## Errors\n");
            for (id, msg) in errors {
                // Schema 2 writes structured `{kind, message}` objects;
                // older manifests carry bare strings.
                let line = match (msg.get("kind"), msg.get("message")) {
                    (Some(kind), Some(message)) => format!(
                        "**{}** — {}",
                        kind.as_str().unwrap_or("?"),
                        message.as_str().unwrap_or("?")
                    ),
                    _ => msg.as_str().unwrap_or("?").to_string(),
                };
                let _ = writeln!(out, "- `{id}`: {line}");
            }
            let _ = writeln!(out);
        }
    }

    // Scheduler metrics; `compare.*` gauges (measured-vs-paper
    // checkpoints) get their own table when present.
    if let Some(metrics) = execution.and_then(|e| e.get("metrics")) {
        let mut compares: Vec<(&String, f64)> = Vec::new();
        let mut plain: Vec<(String, f64)> = Vec::new();
        if let Some(gauges) = metrics.get("gauges").and_then(Json::as_obj) {
            for (name, v) in gauges {
                let Some(v) = v.as_f64() else { continue };
                if name.starts_with("compare.") {
                    compares.push((name, v));
                } else {
                    plain.push((name.clone(), v));
                }
            }
        }
        if let Some(counters) = metrics.get("counters").and_then(Json::as_obj) {
            for (name, v) in counters {
                if let Some(v) = v.as_f64() {
                    plain.push((name.clone(), v));
                }
            }
        }
        if !plain.is_empty() {
            plain.sort_by(|a, b| a.0.cmp(&b.0));
            let _ = writeln!(out, "## Scheduler metrics\n");
            let _ = writeln!(out, "| metric | value |");
            let _ = writeln!(out, "|---|---:|");
            for (name, v) in &plain {
                let _ = writeln!(out, "| {name} | {v:.3} |");
            }
            let _ = writeln!(out);
        }
        if !compares.is_empty() {
            let _ = writeln!(out, "## Measured-vs-paper checkpoints\n");
            let _ = writeln!(out, "| checkpoint | value |");
            let _ = writeln!(out, "|---|---:|");
            for (name, v) in &compares {
                let _ = writeln!(out, "| {} | {v:.4} |", &name["compare.".len()..]);
            }
            let _ = writeln!(out);
        }
        // Histogram distributions with interpolated quantiles. The
        // manifest's metrics object is exactly a registry serialization,
        // so parse it back to borrow the quantile estimator.
        if let Some(registry) = obs::MetricsRegistry::from_json(metrics) {
            let populated: Vec<_> = registry
                .histograms()
                .iter()
                .filter(|(_, h)| h.count() > 0)
                .collect();
            if !populated.is_empty() {
                let _ = writeln!(out, "## Histograms\n");
                let _ = writeln!(out, "| histogram | count | mean | p50 | p90 | p99 |");
                let _ = writeln!(out, "|---|---:|---:|---:|---:|---:|");
                for (name, h) in populated {
                    let mean = h.sum() / h.count() as f64;
                    let (p50, p90, p99) =
                        h.quantile_summary().expect("non-empty histogram has quantiles");
                    let _ = writeln!(
                        out,
                        "| {name} | {} | {mean:.3} | {p50:.3} | {p90:.3} | {p99:.3} |",
                        h.count()
                    );
                }
                let _ = writeln!(out);
            }
        }
    }
}

/// Accumulated wall time per span name, from a per-track `B`/`E` stack
/// walk. Returns `(name, total_duration, count)` sorted by descending
/// total duration. Durations are in the track's native unit (µs on the
/// wall-clock track, cycles on the simulator track).
fn span_totals(events: &[Json]) -> Vec<(String, f64, u64)> {
    let mut stacks: BTreeMap<(u64, u64), Vec<(String, f64)>> = BTreeMap::new();
    let mut totals: BTreeMap<String, (f64, u64)> = BTreeMap::new();
    for ev in events {
        let (Some(pid), Some(tid), Some(ph), Some(ts)) = (
            ev.get("pid").and_then(Json::as_u64),
            ev.get("tid").and_then(Json::as_u64),
            ev.get("ph").and_then(Json::as_str),
            ev.get("ts").and_then(Json::as_f64),
        ) else {
            continue;
        };
        let stack = stacks.entry((pid, tid)).or_default();
        match ph {
            "B" => {
                let name = ev.get("name").and_then(Json::as_str).unwrap_or("?");
                stack.push((name.to_string(), ts));
            }
            "E" => {
                if let Some((name, begin)) = stack.pop() {
                    let e = totals.entry(name).or_insert((0.0, 0));
                    e.0 += (ts - begin).max(0.0);
                    e.1 += 1;
                }
            }
            _ => {}
        }
    }
    let mut rows: Vec<(String, f64, u64)> = totals
        .into_iter()
        .map(|(name, (dur, count))| (name, dur, count))
        .collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    rows
}

/// Counts instant/counter events per `cat.name`.
fn event_counts(events: &[Json]) -> Vec<(String, u64)> {
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    for ev in events {
        if !matches!(ev.get("ph").and_then(Json::as_str), Some("i") | Some("C")) {
            continue;
        }
        let cat = ev.get("cat").and_then(Json::as_str).unwrap_or("?");
        let name = ev.get("name").and_then(Json::as_str).unwrap_or("?");
        *counts.entry(format!("{cat}.{name}")).or_insert(0) += 1;
    }
    let mut rows: Vec<(String, u64)> = counts.into_iter().collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    rows
}

const TOP_ROWS: usize = 12;

fn render_trace(out: &mut String, doc: &Json) {
    let Some(events) = doc.get("traceEvents").and_then(Json::as_arr) else {
        let _ = writeln!(out, "## Trace\n\n(no traceEvents array in trace file)\n");
        return;
    };
    let _ = writeln!(out, "## Trace\n");
    if let Some(s) = obs::trace::summarize(doc) {
        let _ = writeln!(
            out,
            "{} events: {} spans, {} instants, {} counter samples\n",
            s.events, s.spans, s.instants, s.counters
        );
    }

    let spans = span_totals(events);
    if !spans.is_empty() {
        let _ = writeln!(out, "### Top spans by accumulated time\n");
        let _ = writeln!(out, "| span | total (track units) | count |");
        let _ = writeln!(out, "|---|---:|---:|");
        for (name, dur, count) in spans.iter().take(TOP_ROWS) {
            let _ = writeln!(out, "| {name} | {dur:.1} | {count} |");
        }
        if spans.len() > TOP_ROWS {
            let _ = writeln!(out, "| … {} more | | |", spans.len() - TOP_ROWS);
        }
        let _ = writeln!(out);
    }

    let counts = event_counts(events);
    if !counts.is_empty() {
        let _ = writeln!(out, "### Event counts\n");
        let _ = writeln!(out, "| event | count |");
        let _ = writeln!(out, "|---|---:|");
        for (name, count) in counts.iter().take(TOP_ROWS) {
            let _ = writeln!(out, "| {name} | {count} |");
        }
        if counts.len() > TOP_ROWS {
            let _ = writeln!(out, "| … {} more | |", counts.len() - TOP_ROWS);
        }
        let _ = writeln!(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_doc() -> Json {
        obs::trace::disable();
        obs::trace::clear();
        obs::trace::enable(1 << 10);
        {
            let _a = obs::trace::span("orchestrator", "run_scenario:test");
            let _b = obs::trace::span("t3cache", "unit:0");
            obs::trace::instant("orchestrator", "cas.miss:chips");
            obs::trace::sim_instant("cachesim", "refresh.issued", 100);
            obs::trace::sim_instant("cachesim", "refresh.issued", 300);
        }
        obs::trace::disable();
        let doc = obs::trace::export();
        obs::trace::clear();
        doc
    }

    fn manifest_doc() -> Json {
        Json::parse(
            r#"{
              "schema": 1, "ok": true, "fingerprint": "abc123",
              "results": {"scenario": "quick", "stages": {
                "chips": {"kind": "chip_campaign", "status": "ok"},
                "map": {"kind": "retention_map", "status": "ok"}
              }},
              "errors": {"late": "timed out after 1 seconds"},
              "execution": {
                "jobs": 2, "wall_seconds": 1.5, "cache_hits": 1,
                "cache_misses": 1, "executed": 1,
                "stages": {
                  "chips": {"source": "cache", "seconds": 0.0},
                  "map": {"source": "run", "seconds": 0.75}
                },
                "metrics": {
                  "counters": {"orchestrator.cas.hits": 1},
                  "gauges": {"compare.ipc": 0.97, "orchestrator.run.wall_seconds": 1.5},
                  "histograms": {
                    "unit.latency_ms": {
                      "lo": 0, "hi": 100, "buckets": [50, 30, 15, 5],
                      "underflow": 0, "overflow": 0, "count": 100, "sum": 3000
                    }
                  }
                }
              }
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn renders_manifest_sections() {
        let md = render(&manifest_doc(), None);
        for needle in [
            "# Run report: quick",
            "status: **ok**",
            "`abc123`",
            "| chips | chip_campaign | ok | cache | 0.000 |",
            "| map | retention_map | ok | run | 0.750 |",
            "timed out after 1 seconds",
            "| orchestrator.cas.hits | 1.000 |",
            "## Measured-vs-paper checkpoints",
            "| ipc | 0.9700 |",
            "## Histograms",
            "| histogram | count | mean | p50 | p90 | p99 |",
            // 100 samples over [0,100) in 4 buckets of width 25:
            // p50 crosses at rank 50 = end of bucket 0 → 25;
            // p90 is 10 into bucket 2's 15 → 50 + (10/15)·25.
            "| unit.latency_ms | 100 | 30.000 | 25.000 | 66.667 | 95.000 |",
        ] {
            assert!(md.contains(needle), "missing {needle:?} in:\n{md}");
        }
    }

    #[test]
    fn renders_trace_sections() {
        let md = render(&manifest_doc(), Some(&trace_doc()));
        for needle in [
            "## Trace",
            "### Top spans by accumulated time",
            "run_scenario:test",
            "unit:0",
            "### Event counts",
            "cachesim.refresh.issued | 2",
            "orchestrator.cas.miss:chips | 1",
        ] {
            assert!(md.contains(needle), "missing {needle:?} in:\n{md}");
        }
    }

    #[test]
    fn tolerates_minimal_documents() {
        let md = render(&Json::object(), Some(&Json::object()));
        assert!(md.contains("# Run report: ?"));
        assert!(md.contains("no traceEvents"));
    }
}
