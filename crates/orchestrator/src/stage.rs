//! Stage kinds: what a scenario's `kind` strings resolve to.
//!
//! Every stage is a pure function `(params, input payloads, scale) →
//! payload`, where payloads are [`obs::Json`] values. Purity is the load-
//! bearing property: the content-addressed cache assumes a stage's
//! payload is fully determined by its fingerprint (kind, params, scale,
//! input digests), so stage payloads must never contain wall-clock,
//! worker-count, hostname, or git state. The bench crate's
//! [`StageOutput`](bench_harness::figures::StageOutput) split (results
//! vs. timing) exists for exactly this reason, and
//! [`obs::MetricsRegistry::without_timing`] is applied as
//! defense-in-depth.
//!
//! Kinds:
//!
//! * every figure/table stage of [`bench_harness::figures::STAGE_NAMES`]
//!   (`fig06b`, `fig09`, …, `table3`, `sec21_*`);
//! * `chip_campaign` — a Monte-Carlo [`ChipPopulation`] reduced to its
//!   per-chip cache retention times;
//! * `retention_map` — a fixed-bucket histogram over a `chip_campaign`
//!   payload's retention times;
//! * `report` — aggregates the `compare.*` gauges of its dependencies
//!   into one measured-vs-paper table;
//! * `trace_validate` — replays a recorded instruction trace through the
//!   cycle-level simulator and the golden reference model and reports the
//!   per-counter divergence (the trace file participates in the cache
//!   key by content digest, see [`effective_params`]);
//! * `dvfs_point` — one `(cell technology, operating point)` cell of the
//!   DVFS sweep grid: yield, retention, timing feasibility, and the
//!   median chip's suite performance at that clock and rail;
//! * `dvfs_frontier` — joins its `dvfs_point` dependencies into the
//!   Pareto frontier on the (throughput, leakage) plane;
//! * `sleep` / `fail` — timeout- and failure-injection kinds for the
//!   scheduler's own test suite.

use crate::cas::StageCheckpoint;
use bench_harness::RunScale;
use obs::{CancelToken, Json};
use std::collections::BTreeMap;
use std::sync::Arc;
use t3cache::campaign::{map_indexed_with_hooks, worker_count, UnitHooks};
use t3cache::chip::ChipModel;
use t3cache::dvfs::{evaluate_point, pareto_frontier, render_frontier, DvfsPointConfig, DvfsPointResult};
use vlsi::celltech::CellTechKind;
use vlsi::montecarlo::ChipFactory;
use vlsi::tech::{OperatingPoint, TechNode, SIM_TEMPERATURE_C};
use vlsi::units::{Energy, Frequency, Power, Time, Voltage};
use vlsi::variation::VariationCorner;

/// Stage fingerprint schema: folded into every cache key, so bumping it
/// (on any change to a stage's payload layout) invalidates all cached
/// artifacts at once.
pub const STAGE_SCHEMA: u64 = 1;

/// The non-figure stage kinds.
const BUILTIN_KINDS: [&str; 9] = [
    "chip_campaign",
    "retention_map",
    "report",
    "trace_validate",
    "dvfs_point",
    "dvfs_frontier",
    "sleep",
    "fail",
    "flaky",
];

/// The params a stage is actually fingerprinted and executed with.
///
/// For `trace_validate` the `trace` param names a file whose *content*
/// determines the payload, so the bytes' digest is folded in as a
/// `trace_digest` param — same path with different content misses the
/// cache, different path with identical content hits it. An unreadable
/// file digests to `null`; execution then fails before anything is
/// cached, so the placeholder never names a payload. All other kinds
/// pass their params through unchanged.
pub fn effective_params(kind: &str, params: &Json) -> Json {
    if kind != "trace_validate" || params.as_obj().is_none() {
        return params.clone();
    }
    let digest = params
        .get("trace")
        .and_then(Json::as_str)
        .and_then(|path| std::fs::read(path).ok())
        .map(|bytes| crate::hash::content_hash(&bytes));
    let mut p = params.clone();
    p.insert("trace_digest", digest.map_or(Json::Null, Json::Str));
    p
}

/// Every known stage kind, sorted.
pub fn known_kinds() -> Vec<&'static str> {
    let mut v: Vec<&'static str> = BUILTIN_KINDS.into();
    v.extend(bench_harness::figures::STAGE_NAMES);
    v.sort_unstable();
    v
}

/// Whether `kind` names a runnable stage.
pub fn is_known(kind: &str) -> bool {
    BUILTIN_KINDS.contains(&kind) || bench_harness::figures::stage_fn(kind).is_some()
}

/// Everything a stage execution sees.
#[derive(Debug)]
pub struct StageCtx<'a> {
    /// The stage's `params` object from the scenario.
    pub params: &'a Json,
    /// Dependency payloads, keyed by dependency stage id.
    pub inputs: &'a BTreeMap<String, Json>,
    /// The scenario's run scale.
    pub scale: RunScale,
    /// Per-unit checkpoint keyed on this stage's cache fingerprint, when
    /// the scheduler is running with the cache enabled. Stages with a
    /// campaign shape stream completed units into it and replay them on
    /// the next attempt; other stages ignore it.
    pub checkpoint: Option<Arc<StageCheckpoint>>,
    /// Cooperative cancellation: long stages should poll this between
    /// units and bail out with an `Err` once set. Never set in tests and
    /// cached replans; the CLI's signal handler sets it on SIGINT/SIGTERM.
    pub cancel: CancelToken,
}

impl StageCtx<'_> {
    fn str_param(&self, key: &str, default: &str) -> Result<String, String> {
        match self.params.get(key) {
            None => Ok(default.to_string()),
            Some(v) => v
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("param {key:?} must be a string")),
        }
    }

    fn u64_param(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.params.get(key) {
            None => Ok(default),
            Some(v) => v
                .as_u64()
                .ok_or_else(|| format!("param {key:?} must be a non-negative integer")),
        }
    }

    fn f64_param(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.params.get(key) {
            None => Ok(default),
            Some(v) => match v.as_f64() {
                Some(x) if x.is_finite() => Ok(x),
                _ => Err(format!("param {key:?} must be a finite number")),
            },
        }
    }
}

/// Runs one stage to its payload. `Err` is a *stage failure* (bad
/// params, missing inputs); the scheduler additionally catches panics
/// from inside the simulation kernels.
pub fn execute(kind: &str, ctx: &StageCtx<'_>) -> Result<Json, String> {
    if let Some(f) = bench_harness::figures::stage_fn(kind) {
        return Ok(figure_payload(kind, f(&ctx.scale)));
    }
    match kind {
        "chip_campaign" => chip_campaign(ctx),
        "retention_map" => retention_map(ctx),
        "report" => report(ctx),
        "trace_validate" => trace_validate(ctx),
        "dvfs_point" => dvfs_point(ctx),
        "dvfs_frontier" => dvfs_frontier(ctx),
        "sleep" => sleep(ctx),
        "fail" => fail(ctx),
        "flaky" => flaky(ctx),
        other => Err(format!("unknown stage kind {other:?}")),
    }
}

/// Reduces a figure stage's [`StageOutput`] to a cacheable payload:
/// name/seed/node/scheme identity, timing-stripped metrics, and the
/// deterministic text rendering. The campaign timing report is dropped
/// on the floor — it is a property of *this run*, not of the result.
fn figure_payload(kind: &str, out: bench_harness::figures::StageOutput) -> Json {
    let m = &out.manifest;
    let mut p = Json::object();
    p.insert("kind", Json::Str(kind.to_string()));
    p.insert("name", Json::Str(m.name.clone()));
    p.insert("seed", m.seed.map_or(Json::Null, |s| Json::Num(s as f64)));
    p.insert(
        "tech_node",
        m.tech_node.clone().map_or(Json::Null, Json::Str),
    );
    p.insert("scheme", m.scheme.clone().map_or(Json::Null, Json::Str));
    p.insert("metrics", m.metrics.without_timing().to_json());
    p.insert("text", Json::Str(out.text));
    p
}

/// `chip_campaign`: generates a Monte-Carlo chip population and exports
/// the per-chip whole-cache retention times (ns) plus summary stats.
/// Params: `node` (65nm/45nm/32nm, default 32nm), `corner`
/// (none/typical/severe, default severe), `chips` (default
/// `scale.mc_chips`), `seed` (default 20245), `unit_sleep_ms` (default
/// 0 — artificial per-chip delay, for crash-recovery tests that need a
/// campaign slow enough to interrupt).
///
/// Each chip is one campaign unit: unit `i`'s randomness derives from
/// `(seed, i)` alone inside [`ChipFactory`], so completed units stream
/// into the stage checkpoint as they finish and replay bit-identically
/// on resume. When the campaign is cancelled mid-run the stage returns
/// an `Err` — partial results are never a payload, but every completed
/// unit is already on disk.
fn chip_campaign(ctx: &StageCtx<'_>) -> Result<Json, String> {
    let node: TechNode = ctx.str_param("node", "32nm")?.parse()?;
    let corner = match ctx.str_param("corner", "severe")?.as_str() {
        "none" => VariationCorner::None,
        "typical" => VariationCorner::Typical,
        "severe" => VariationCorner::Severe,
        other => return Err(format!("unknown variation corner {other:?}")),
    };
    let chips = ctx.u64_param("chips", u64::from(ctx.scale.mc_chips))?;
    if chips == 0 || chips > 1_000_000 {
        return Err(format!("param \"chips\" = {chips} out of range [1, 1e6]"));
    }
    let seed = ctx.u64_param("seed", 20_245)?;
    let unit_sleep_ms = ctx.f64_param("unit_sleep_ms", 0.0)?;
    if !(0.0..=60_000.0).contains(&unit_sleep_ms) {
        return Err(format!(
            "param \"unit_sleep_ms\" = {unit_sleep_ms} out of range [0, 60000]"
        ));
    }

    let factory = ChipFactory::new(node, corner.params(), seed);
    let n = chips as usize;
    let checkpoint = ctx.checkpoint.as_deref();
    let resume = |i: usize| {
        checkpoint
            .and_then(|cp| cp.load_unit(i))
            .and_then(|unit| unit.get("retention_ns").and_then(Json::as_f64))
    };
    let persist = |i: usize, v: &f64| {
        if let Some(cp) = checkpoint {
            let mut unit = Json::object();
            unit.insert("retention_ns", Json::Num(*v));
            cp.store_unit(i, &unit);
        }
    };
    let hooks = UnitHooks {
        resume: Some(&resume),
        persist: Some(&persist),
        cancel: Some(&ctx.cancel),
    };
    let pacing = std::time::Duration::from_secs_f64(unit_sleep_ms / 1000.0);
    let (slots, _report) = map_indexed_with_hooks(n, worker_count(), hooks, |i| {
        if !pacing.is_zero() {
            std::thread::sleep(pacing);
        }
        ChipModel::new(&factory.chip(i as u32)).cache_retention().ns()
    });
    let done = slots.iter().filter(|s| s.is_some()).count();
    if done < n {
        return Err(format!(
            "cancelled after {done}/{n} units (completed units are checkpointed)"
        ));
    }
    let retention_ns: Vec<f64> = slots.into_iter().flatten().collect();
    let mean = retention_ns.iter().sum::<f64>() / retention_ns.len() as f64;
    // The ns → seconds → ns round trip is deliberate: it reproduces
    // `ChipPopulation::median_cache_retention().ns()` bit-for-bit, so
    // payloads match artifacts cached by earlier versions of this stage.
    let median_ns = vlsi::units::Time::from_ns(vlsi::stats::median(&retention_ns)).ns();

    let mut p = Json::object();
    p.insert("kind", Json::Str("chip_campaign".into()));
    p.insert("node", Json::Str(node.to_string()));
    p.insert("corner", Json::Str(corner.to_string()));
    p.insert("chips", Json::Num(chips as f64));
    p.insert("seed", Json::Num(seed as f64));
    p.insert(
        "retention_ns",
        Json::Arr(retention_ns.iter().map(|&v| Json::Num(v)).collect()),
    );
    p.insert("median_ns", Json::Num(median_ns));
    p.insert("mean_ns", Json::Num(mean));
    p.insert("min_ns", Json::Num(bench_harness::min(&retention_ns)));
    p.insert("max_ns", Json::Num(bench_harness::max(&retention_ns)));
    Ok(p)
}

/// `retention_map`: bins a `chip_campaign` payload's `retention_ns`
/// into a fixed-bucket histogram. Params: `lo_ns` (default 0), `hi_ns`
/// (default 3000), `bins` (default 12), `threshold_ns` (default 700 —
/// the paper's nominal access+refresh feasibility bound).
fn retention_map(ctx: &StageCtx<'_>) -> Result<Json, String> {
    let lo = ctx.f64_param("lo_ns", 0.0)?;
    let hi = ctx.f64_param("hi_ns", 3000.0)?;
    let bins = ctx.u64_param("bins", 12)? as usize;
    let threshold = ctx.f64_param("threshold_ns", 700.0)?;
    if hi <= lo || bins == 0 || bins > 10_000 {
        return Err(format!(
            "bad histogram shape: lo_ns={lo}, hi_ns={hi}, bins={bins}"
        ));
    }

    let mut sources = ctx
        .inputs
        .iter()
        .filter_map(|(id, payload)| payload.get("retention_ns").and_then(Json::as_arr).map(|a| (id, a)));
    let (source_id, arr) = sources
        .next()
        .ok_or("retention_map needs a dependency with a \"retention_ns\" array")?;
    if sources.next().is_some() {
        return Err("retention_map needs exactly one retention_ns-bearing dependency".into());
    }
    let values: Vec<f64> = arr.iter().filter_map(Json::as_f64).collect();
    if values.len() != arr.len() || values.is_empty() {
        return Err(format!(
            "dependency {source_id:?} has a malformed retention_ns array"
        ));
    }

    let width = (hi - lo) / bins as f64;
    let mut buckets = vec![0u64; bins];
    let (mut underflow, mut overflow) = (0u64, 0u64);
    for &v in &values {
        if v < lo {
            underflow += 1;
        } else if v >= hi {
            overflow += 1;
        } else {
            let i = (((v - lo) / width) as usize).min(bins - 1);
            buckets[i] += 1;
        }
    }

    let mut p = Json::object();
    p.insert("kind", Json::Str("retention_map".into()));
    p.insert("source", Json::Str(source_id.clone()));
    p.insert("lo_ns", Json::Num(lo));
    p.insert("hi_ns", Json::Num(hi));
    p.insert(
        "buckets",
        Json::Arr(buckets.iter().map(|&c| Json::Num(c as f64)).collect()),
    );
    p.insert("underflow", Json::Num(underflow as f64));
    p.insert("overflow", Json::Num(overflow as f64));
    p.insert("count", Json::Num(values.len() as f64));
    p.insert(
        "mean_ns",
        Json::Num(values.iter().sum::<f64>() / values.len() as f64),
    );
    p.insert("threshold_ns", Json::Num(threshold));
    p.insert(
        "frac_above_threshold",
        Json::Num(bench_harness::frac_above(&values, threshold)),
    );
    Ok(p)
}

/// `report`: collects every dependency's `compare.*` gauges (the
/// measured-vs-paper checkpoints each figure stage records) into one
/// table, plus a plain-text rendering.
fn report(ctx: &StageCtx<'_>) -> Result<Json, String> {
    if ctx.inputs.is_empty() {
        return Err("report needs at least one dependency".into());
    }
    let mut stages = Json::object();
    let mut text = String::from("measured-vs-paper checkpoints by stage\n");
    let mut total = 0usize;
    for (id, payload) in ctx.inputs {
        let mut entry = Json::object();
        entry.insert(
            "kind",
            payload.get("kind").cloned().unwrap_or(Json::Null),
        );
        let mut compares = Json::object();
        if let Some(gauges) = payload
            .get("metrics")
            .and_then(|m| m.get("gauges"))
            .and_then(Json::as_obj)
        {
            for (name, value) in gauges {
                if let Some(slug) = name.strip_prefix("compare.") {
                    compares.insert(slug, value.clone());
                    if let Some(v) = value.as_f64() {
                        text.push_str(&format!("  {id:<18} {slug:<40} {v:>12.4}\n"));
                        total += 1;
                    }
                }
            }
        }
        entry.insert("compares", compares);
        stages.insert(id, entry);
    }
    text.push_str(&format!("  total checkpoints: {total}\n"));

    let mut p = Json::object();
    p.insert("kind", Json::Str("report".into()));
    p.insert("stages", stages);
    p.insert("checkpoints", Json::Num(total as f64));
    p.insert("text", Json::Str(text));
    Ok(p)
}

/// `trace_validate`: streams a recorded instruction trace (param
/// `trace`, a file in the [`workloads`] stream container format) through
/// the cycle-level [`cachesim::DataCache`] and the naive golden model of
/// the `validate` crate, and reports the per-counter divergence for each
/// requested scheme. Params: `schemes` (comma-separated
/// [`validate::scheme_by_name`] names, default the three representative
/// schemes), `retention` (named profile, default `mixed`), `tolerance`
/// (max tolerated absolute divergence, default 0), `max_records` (cap on
/// replayed records, 0 = whole trace), `strict` (default 1 — divergence
/// beyond tolerance is a stage *failure*, so nothing divergent is ever
/// cached as a good artifact).
///
/// The trace file's bytes are part of the stage fingerprint via
/// [`effective_params`]; the payload repeats the digest it validated.
fn trace_validate(ctx: &StageCtx<'_>) -> Result<Json, String> {
    let path = ctx.str_param("trace", "")?;
    if path.is_empty() {
        return Err("trace_validate needs a \"trace\" file path param".into());
    }
    let retention_name = ctx.str_param("retention", "mixed")?;
    let tolerance = ctx.u64_param("tolerance", 0)?;
    let max_records = ctx.u64_param("max_records", 0)?;
    let strict = ctx.u64_param("strict", 1)? != 0;
    let scheme_names: Vec<String> = match ctx.str_param("schemes", "")?.as_str() {
        "" => validate::default_schemes()
            .iter()
            .map(|(n, _)| n.to_string())
            .collect(),
        list => list.split(',').map(|s| s.trim().to_string()).collect(),
    };

    let bytes = std::fs::read(&path).map_err(|e| format!("reading trace {path:?}: {e}"))?;
    let digest = crate::hash::content_hash(&bytes);
    let (meta, total) = {
        let r = workloads::TraceReader::open(&path)
            .map_err(|e| format!("opening trace {path:?}: {e}"))?;
        (r.meta().clone(), r.total_records())
    };

    let mut schemes = Json::object();
    let mut divergent: Vec<String> = Vec::new();
    let mut max_div = 0u64;
    for name in &scheme_names {
        let scheme = validate::scheme_by_name(name)
            .ok_or_else(|| format!("unknown scheme {name:?}"))?;
        let cfg = cachesim::CacheConfig::paper(scheme);
        let retention = validate::named_retention(&retention_name, cfg.geometry.lines())?;
        // Reopen per scheme: the reader is a forward-only stream, and
        // streaming keeps validation constant-memory on multi-GB traces.
        let mut reader = workloads::TraceReader::open(&path)
            .map_err(|e| format!("opening trace {path:?}: {e}"))?;
        let mut read_err = None;
        let stream = std::iter::from_fn(|| match reader.next_record() {
            Ok(r) => r,
            Err(e) => {
                read_err = Some(e);
                None
            }
        });
        let report = if max_records > 0 {
            validate::run_differential_with(
                cfg,
                stream.take(max_records as usize),
                retention,
                tolerance,
            )
        } else {
            validate::run_differential_with(cfg, stream, retention, tolerance)
        };
        if let Some(e) = read_err {
            return Err(format!("reading trace {path:?}: {e}"));
        }
        if ctx.cancel.is_cancelled() {
            return Err(format!("cancelled after scheme {name}"));
        }
        max_div = max_div.max(report.max_divergence());
        if !report.within_tolerance() {
            divergent.push(name.clone());
        }
        schemes.insert(name, report.to_json());
    }

    if strict && !divergent.is_empty() {
        return Err(format!(
            "models diverged beyond tolerance {tolerance} for scheme(s) {} \
             (max divergence {max_div})",
            divergent.join(", ")
        ));
    }

    let mut p = Json::object();
    p.insert("kind", Json::Str("trace_validate".into()));
    p.insert("trace", Json::Str(path));
    p.insert("trace_digest", Json::Str(digest));
    p.insert("trace_name", Json::Str(meta.name));
    p.insert("trace_seed", Json::Num(meta.seed as f64));
    p.insert("total_records", Json::Num(total as f64));
    p.insert("retention", Json::Str(retention_name));
    p.insert("tolerance", Json::Num(tolerance as f64));
    p.insert("max_divergence", Json::Num(max_div as f64));
    p.insert("within_tolerance", Json::Bool(divergent.is_empty()));
    p.insert("schemes", schemes);
    Ok(p)
}

/// `dvfs_point`: evaluates one `(cell technology, operating point)`
/// grid cell — fabricates a Monte-Carlo population in that technology,
/// sizes counters per chip, and runs the median chip's benchmark suite
/// at the cell's clock and rail. Params: `node` (default 32nm),
/// `technology` ([`CellTechKind`] slug, default `3t1d`), `corner`
/// (default severe), `vdd` / `freq_ghz` / `temp_c` (defaulting to the
/// node's nominal corner — scenario grid expansion injects all three,
/// so every cell's coordinates live in its cache key), `chips` (default
/// `scale.mc_chips`), `seed` (default 20245).
fn dvfs_point(ctx: &StageCtx<'_>) -> Result<Json, String> {
    let node: TechNode = ctx.str_param("node", "32nm")?.parse()?;
    let kind: CellTechKind = ctx.str_param("technology", "3t1d")?.parse()?;
    let corner = match ctx.str_param("corner", "severe")?.as_str() {
        "none" => VariationCorner::None,
        "typical" => VariationCorner::Typical,
        "severe" => VariationCorner::Severe,
        other => return Err(format!("unknown variation corner {other:?}")),
    };
    let vdd = ctx.f64_param("vdd", node.vdd().volts())?;
    let freq_ghz = ctx.f64_param("freq_ghz", node.chip_frequency().ghz())?;
    let temp_c = ctx.f64_param("temp_c", SIM_TEMPERATURE_C)?;
    if !(0.1..=2.0).contains(&vdd) {
        return Err(format!("param \"vdd\" = {vdd} out of range [0.1, 2]"));
    }
    if !(0.01..=20.0).contains(&freq_ghz) {
        return Err(format!(
            "param \"freq_ghz\" = {freq_ghz} out of range [0.01, 20]"
        ));
    }
    if !(-55.0..=150.0).contains(&temp_c) {
        return Err(format!(
            "param \"temp_c\" = {temp_c} out of range [-55, 150]"
        ));
    }
    let chips = ctx.u64_param("chips", u64::from(ctx.scale.mc_chips))?;
    if chips == 0 || chips > 100_000 {
        return Err(format!("param \"chips\" = {chips} out of range [1, 1e5]"));
    }
    let seed = ctx.u64_param("seed", 20_245)?;

    let op = OperatingPoint {
        vdd: Voltage::new(vdd),
        freq: Frequency::from_ghz(freq_ghz),
        temp_c,
    };
    let cfg = DvfsPointConfig {
        node,
        kind,
        op,
        params: corner.params(),
        chips: chips as u32,
        seed,
        eval: ctx.scale.eval_config(node),
    };
    let r = evaluate_point(&cfg);

    let mut p = Json::object();
    p.insert("kind", Json::Str("dvfs_point".into()));
    p.insert("node", Json::Str(node.to_string()));
    p.insert("corner", Json::Str(corner.to_string()));
    p.insert("technology", Json::Str(kind.slug().to_string()));
    p.insert("slug", Json::Str(r.slug()));
    p.insert("vdd", Json::Num(op.vdd.volts()));
    p.insert("freq_ghz", Json::Num(op.freq.ghz()));
    p.insert("temp_c", Json::Num(op.temp_c));
    p.insert("chips", Json::Num(chips as f64));
    p.insert("seed", Json::Num(seed as f64));
    p.insert("yield_fraction", Json::Num(r.yield_fraction));
    p.insert("mean_dead_fraction", Json::Num(r.mean_dead_fraction));
    p.insert("median_retention_ns", Json::Num(r.median_cache_retention.ns()));
    p.insert("access_ps", Json::Num(r.access_time.ps()));
    p.insert("timing_feasible", Json::Bool(r.timing_feasible));
    p.insert("normalized_perf", Json::Num(r.normalized_perf));
    p.insert("bips", Json::Num(r.bips));
    p.insert("leakage_mw", Json::Num(r.leakage.mw()));
    p.insert("refresh_energy_pj", Json::Num(r.refresh_energy_per_line.pj()));
    p.insert("needs_refresh", Json::Bool(r.needs_refresh));
    Ok(p)
}

/// Rehydrates a [`DvfsPointResult`] from a `dvfs_point` payload.
fn dvfs_payload_point(id: &str, p: &Json) -> Result<DvfsPointResult, String> {
    let num = |key: &str| {
        p.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("dependency {id:?} missing number {key:?}"))
    };
    let flag = |key: &str| {
        p.get(key)
            .and_then(Json::as_bool)
            .ok_or_else(|| format!("dependency {id:?} missing boolean {key:?}"))
    };
    let kind: CellTechKind = p
        .get("technology")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("dependency {id:?} missing string \"technology\""))?
        .parse()?;
    Ok(DvfsPointResult {
        kind,
        op: OperatingPoint {
            vdd: Voltage::new(num("vdd")?),
            freq: Frequency::from_ghz(num("freq_ghz")?),
            temp_c: num("temp_c")?,
        },
        yield_fraction: num("yield_fraction")?,
        mean_dead_fraction: num("mean_dead_fraction")?,
        median_cache_retention: Time::from_ns(num("median_retention_ns")?),
        access_time: Time::from_ps(num("access_ps")?),
        timing_feasible: flag("timing_feasible")?,
        normalized_perf: num("normalized_perf")?,
        bips: num("bips")?,
        leakage: Power::from_mw(num("leakage_mw")?),
        refresh_energy_per_line: Energy::from_pj(num("refresh_energy_pj")?),
        needs_refresh: flag("needs_refresh")?,
    })
}

/// `dvfs_frontier`: joins every `dvfs_point` dependency into one grid
/// report and marks the Pareto frontier on the (BIPS, leakage) plane.
/// Dependencies that are not `dvfs_point` payloads are ignored, so a
/// frontier can ride the same DAG as figure stages; at least one grid
/// cell is required. Rows follow dependency-id order (deterministic —
/// the inputs map is sorted).
fn dvfs_frontier(ctx: &StageCtx<'_>) -> Result<Json, String> {
    let mut ids: Vec<&str> = Vec::new();
    let mut points: Vec<DvfsPointResult> = Vec::new();
    for (id, payload) in ctx.inputs {
        if payload.get("kind").and_then(Json::as_str) != Some("dvfs_point") {
            continue;
        }
        points.push(dvfs_payload_point(id, payload)?);
        ids.push(id);
    }
    if points.is_empty() {
        return Err("dvfs_frontier needs at least one dvfs_point dependency".into());
    }
    let frontier = pareto_frontier(&points);
    let text = render_frontier(&points);

    let mut rows = Vec::with_capacity(points.len());
    for ((id, point), &on_frontier) in ids.iter().zip(&points).zip(&frontier) {
        let mut row = Json::object();
        row.insert("source", Json::Str((*id).to_string()));
        row.insert("slug", Json::Str(point.slug()));
        row.insert("yield_fraction", Json::Num(point.yield_fraction));
        row.insert("timing_feasible", Json::Bool(point.timing_feasible));
        row.insert("bips", Json::Num(point.bips));
        row.insert("leakage_mw", Json::Num(point.leakage.mw()));
        row.insert("bips_per_watt", Json::Num(point.bips_per_watt()));
        row.insert("on_frontier", Json::Bool(on_frontier));
        rows.push(row);
    }
    let frontier_size = frontier.iter().filter(|&&f| f).count();

    let mut p = Json::object();
    p.insert("kind", Json::Str("dvfs_frontier".into()));
    p.insert("points", Json::Arr(rows));
    p.insert("count", Json::Num(points.len() as f64));
    p.insert("frontier_size", Json::Num(frontier_size as f64));
    p.insert("text", Json::Str(text));
    Ok(p)
}

/// `sleep`: sleeps `seconds` (default 0.05) — the scheduler test suite's
/// controllable slow stage. The payload records only the *requested*
/// duration, keeping it deterministic.
fn sleep(ctx: &StageCtx<'_>) -> Result<Json, String> {
    let seconds = ctx.f64_param("seconds", 0.05)?;
    if !(0.0..=3600.0).contains(&seconds) {
        return Err(format!("param \"seconds\" = {seconds} out of range [0, 3600]"));
    }
    std::thread::sleep(std::time::Duration::from_secs_f64(seconds));
    let mut p = Json::object();
    p.insert("kind", Json::Str("sleep".into()));
    p.insert("seconds", Json::Num(seconds));
    Ok(p)
}

/// `fail`: fails on purpose — `mode: "panic"` (default) panics like a
/// crashed simulation kernel; `mode: "error"` returns a stage error.
/// Exists so failure isolation is testable without breaking a real
/// stage.
fn fail(ctx: &StageCtx<'_>) -> Result<Json, String> {
    let message = ctx.str_param("message", "injected failure")?;
    match ctx.str_param("mode", "panic")?.as_str() {
        "panic" => panic!("{message}"),
        "error" => Err(message),
        other => Err(format!("unknown fail mode {other:?}")),
    }
}

/// `flaky`: deterministic *transient* failure injection for the
/// scheduler's retry tests. The required `marker` param names a file:
/// when it does not exist the stage creates it and fails (the first
/// attempt); when it exists the stage succeeds (any retry). The success
/// payload is constant, so the purity contract holds for the payload
/// that actually lands in the cache.
fn flaky(ctx: &StageCtx<'_>) -> Result<Json, String> {
    let marker = ctx.str_param("marker", "")?;
    if marker.is_empty() {
        return Err("flaky needs a \"marker\" file path param".into());
    }
    if std::path::Path::new(&marker).exists() {
        let mut p = Json::object();
        p.insert("kind", Json::Str("flaky".into()));
        Ok(p)
    } else {
        std::fs::write(&marker, b"first attempt\n")
            .map_err(|e| format!("flaky cannot write marker {marker:?}: {e}"))?;
        Err("injected transient failure (marker created; a retry succeeds)".into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(params: &'a Json, inputs: &'a BTreeMap<String, Json>) -> StageCtx<'a> {
        StageCtx {
            params,
            inputs,
            scale: RunScale::QUICK,
            checkpoint: None,
            cancel: CancelToken::new(),
        }
    }

    #[test]
    fn every_registered_kind_is_known() {
        for kind in known_kinds() {
            assert!(is_known(kind), "{kind}");
        }
        assert!(!is_known("nope"));
        assert_eq!(
            known_kinds().len(),
            BUILTIN_KINDS.len() + bench_harness::figures::STAGE_NAMES.len()
        );
    }

    #[test]
    fn chip_campaign_payload_is_deterministic() {
        let params = Json::parse(r#"{"chips": 6, "seed": 99, "corner": "typical"}"#).unwrap();
        let inputs = BTreeMap::new();
        let a = execute("chip_campaign", &ctx(&params, &inputs)).unwrap();
        let b = execute("chip_campaign", &ctx(&params, &inputs)).unwrap();
        assert_eq!(a.render(), b.render());
        assert_eq!(a.get("retention_ns").unwrap().as_arr().unwrap().len(), 6);
        assert!(a.get("median_ns").unwrap().as_f64().unwrap() > 0.0);
    }

    #[test]
    fn retention_map_bins_its_input() {
        let params = Json::parse(r#"{"lo_ns": 0, "hi_ns": 10, "bins": 2, "threshold_ns": 5}"#)
            .unwrap();
        let mut inputs = BTreeMap::new();
        inputs.insert(
            "chips".to_string(),
            Json::parse(r#"{"retention_ns": [1.0, 2.0, 7.0, 11.0, -1.0]}"#).unwrap(),
        );
        let p = execute("retention_map", &ctx(&params, &inputs)).unwrap();
        let buckets: Vec<u64> = p
            .get("buckets")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|b| b.as_u64().unwrap())
            .collect();
        assert_eq!(buckets, vec![2, 1]);
        assert_eq!(p.get("underflow").unwrap().as_u64(), Some(1));
        assert_eq!(p.get("overflow").unwrap().as_u64(), Some(1));
        assert_eq!(p.get("frac_above_threshold").unwrap().as_f64(), Some(0.4));

        // No retention-bearing input → stage error, not panic.
        let empty = BTreeMap::new();
        assert!(execute("retention_map", &ctx(&params, &empty)).is_err());
    }

    #[test]
    fn report_collects_compare_gauges() {
        let params = Json::object();
        let mut inputs = BTreeMap::new();
        inputs.insert(
            "figx".to_string(),
            Json::parse(
                r#"{"kind": "fig09",
                    "metrics": {"gauges": {"compare.perf": 0.97, "scheme.x": 1.0}}}"#,
            )
            .unwrap(),
        );
        let p = execute("report", &ctx(&params, &inputs)).unwrap();
        assert_eq!(p.get("checkpoints").unwrap().as_u64(), Some(1));
        let compares = p
            .get("stages")
            .unwrap()
            .get("figx")
            .unwrap()
            .get("compares")
            .unwrap();
        assert_eq!(compares.get("perf").unwrap().as_f64(), Some(0.97));
        assert!(compares.get("scheme.x").is_none());
    }

    #[test]
    fn chip_campaign_checkpoints_and_resumes_bit_identically() {
        let dir = std::env::temp_dir().join(format!(
            "pv3t1d_stage_ckpt_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = crate::cas::ArtifactStore::new(&dir);
        let params = Json::parse(r#"{"chips": 6, "seed": 99, "corner": "typical"}"#).unwrap();
        let inputs = BTreeMap::new();
        let reference = execute("chip_campaign", &ctx(&params, &inputs)).unwrap();

        // First checkpointed run computes and persists every unit.
        let cp = Arc::new(StageCheckpoint::new(store.clone(), "stagekey", "chip_campaign"));
        let c = StageCtx {
            checkpoint: Some(cp.clone()),
            ..ctx(&params, &inputs)
        };
        let first = execute("chip_campaign", &c).unwrap();
        assert_eq!(first.render(), reference.render());
        assert_eq!(cp.stored(), 6);

        // Second run replays every unit from the checkpoint, bit-exactly.
        let cp = Arc::new(StageCheckpoint::new(store, "stagekey", "chip_campaign"));
        let c = StageCtx {
            checkpoint: Some(cp.clone()),
            ..ctx(&params, &inputs)
        };
        let second = execute("chip_campaign", &c).unwrap();
        assert_eq!(second.render(), reference.render());
        assert_eq!(cp.resumed(), 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancelled_chip_campaign_is_a_stage_error() {
        let params = Json::parse(r#"{"chips": 4, "seed": 1}"#).unwrap();
        let inputs = BTreeMap::new();
        let token = CancelToken::new();
        token.cancel();
        let c = StageCtx {
            cancel: token,
            ..ctx(&params, &inputs)
        };
        let err = execute("chip_campaign", &c).unwrap_err();
        assert!(err.contains("cancelled"), "{err}");
    }

    fn temp_trace(tag: &str, len: u64) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!(
            "pv3t1d_stage_trace_{tag}_{}.pvtrace",
            std::process::id()
        ));
        workloads::record_bench_to_path(workloads::SpecBenchmark::Gcc, 7, len, &path)
            .expect("recording a trace");
        path
    }

    #[test]
    fn trace_validate_agrees_on_a_recorded_trace() {
        let path = temp_trace("ok", 1_200);
        let mut params = Json::object();
        params.insert("trace", Json::Str(path.display().to_string()));
        params.insert("retention", Json::Str("mixed".into()));
        let inputs = BTreeMap::new();
        let p = execute("trace_validate", &ctx(&params, &inputs)).unwrap();
        assert_eq!(p.get("within_tolerance").and_then(Json::as_bool), Some(true));
        assert_eq!(p.get("max_divergence").and_then(Json::as_u64), Some(0));
        assert_eq!(p.get("total_records").and_then(Json::as_u64), Some(1_200));
        let schemes = p.get("schemes").and_then(Json::as_obj).unwrap();
        assert_eq!(schemes.len(), 3);
        // The payload pins the trace content it validated.
        let digest = crate::hash::content_hash(&std::fs::read(&path).unwrap());
        assert_eq!(p.get("trace_digest").and_then(Json::as_str), Some(digest.as_str()));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trace_validate_rejects_bad_params() {
        let path = temp_trace("bad", 64);
        let inputs = BTreeMap::new();
        for (tag, params) in [
            ("no trace", Json::object()),
            ("missing file", {
                let mut p = Json::object();
                p.insert("trace", Json::Str("/nonexistent/x.pvtrace".into()));
                p
            }),
            ("unknown scheme", {
                let mut p = Json::object();
                p.insert("trace", Json::Str(path.display().to_string()));
                p.insert("schemes", Json::Str("warp-drive".into()));
                p
            }),
            ("unknown retention", {
                let mut p = Json::object();
                p.insert("trace", Json::Str(path.display().to_string()));
                p.insert("retention", Json::Str("imaginary".into()));
                p
            }),
        ] {
            assert!(
                execute("trace_validate", &ctx(&params, &inputs)).is_err(),
                "{tag}"
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn effective_params_digests_trace_content_not_path() {
        let a = temp_trace("dig_a", 256);
        let mut pa = Json::object();
        pa.insert("trace", Json::Str(a.display().to_string()));
        let ea = effective_params("trace_validate", &pa);
        let digest = ea.get("trace_digest").and_then(Json::as_str).unwrap().to_string();
        assert_eq!(digest, crate::hash::content_hash(&std::fs::read(&a).unwrap()));

        // Identical content at a different path → identical digest.
        let b = std::env::temp_dir().join(format!(
            "pv3t1d_stage_trace_dig_b_{}.pvtrace",
            std::process::id()
        ));
        std::fs::copy(&a, &b).unwrap();
        let mut pb = Json::object();
        pb.insert("trace", Json::Str(b.display().to_string()));
        let eb = effective_params("trace_validate", &pb);
        assert_eq!(eb.get("trace_digest").and_then(Json::as_str), Some(digest.as_str()));

        // Unreadable file → null placeholder, not a panic.
        let mut pm = Json::object();
        pm.insert("trace", Json::Str("/nonexistent/x.pvtrace".into()));
        let em = effective_params("trace_validate", &pm);
        assert_eq!(em.get("trace_digest"), Some(&Json::Null));

        // Other kinds pass through untouched.
        assert_eq!(effective_params("chip_campaign", &pa).render(), pa.render());
        let _ = std::fs::remove_file(&a);
        let _ = std::fs::remove_file(&b);
    }

    /// A scale small enough that a grid cell's suite evaluation stays a
    /// unit-test-sized workload.
    fn tiny_scale() -> RunScale {
        RunScale {
            mc_chips: 3,
            sim_chips: 1,
            instructions: 5_000,
            warmup: 2_000,
        }
    }

    #[test]
    fn dvfs_point_payload_is_deterministic() {
        let params = Json::parse(
            r#"{"technology": "3t1d", "corner": "typical", "chips": 3, "seed": 41,
                "vdd": 1.0, "freq_ghz": 4.3, "temp_c": 80}"#,
        )
        .unwrap();
        let inputs = BTreeMap::new();
        let c = StageCtx {
            scale: tiny_scale(),
            ..ctx(&params, &inputs)
        };
        let a = execute("dvfs_point", &c).unwrap();
        let b = execute("dvfs_point", &c).unwrap();
        assert_eq!(a.render(), b.render());
        assert_eq!(a.get("slug").and_then(Json::as_str), Some("3t1d.v1000f4300t80"));
        assert_eq!(a.get("timing_feasible").and_then(Json::as_bool), Some(true));
        let y = a.get("yield_fraction").and_then(Json::as_f64).unwrap();
        assert!((0.0..=1.0).contains(&y), "yield {y}");
        assert!(a.get("bips").and_then(Json::as_f64).unwrap() > 0.0);
    }

    #[test]
    fn dvfs_frontier_joins_its_points() {
        let inputs_empty = BTreeMap::new();
        let cell = |vdd: f64, ghz: f64| {
            let mut params = Json::object();
            params.insert("technology", Json::Str("3t1d".into()));
            params.insert("corner", Json::Str("typical".into()));
            params.insert("chips", Json::Num(3.0));
            params.insert("seed", Json::Num(41.0));
            params.insert("vdd", Json::Num(vdd));
            params.insert("freq_ghz", Json::Num(ghz));
            let c = StageCtx {
                scale: tiny_scale(),
                ..ctx(&params, &inputs_empty)
            };
            execute("dvfs_point", &c).unwrap()
        };
        let mut inputs = BTreeMap::new();
        inputs.insert("grid.a".to_string(), cell(1.0, 4.3));
        inputs.insert("grid.b".to_string(), cell(1.0, 2.0));
        // A non-point dependency rides along and is ignored.
        inputs.insert("figx".to_string(), Json::parse(r#"{"kind": "fig09"}"#).unwrap());

        let params = Json::object();
        let p = execute("dvfs_frontier", &ctx(&params, &inputs)).unwrap();
        assert_eq!(p.get("count").and_then(Json::as_u64), Some(2));
        // The slower clock at the same rail is dominated: the frontier is
        // exactly the nominal point.
        assert_eq!(p.get("frontier_size").and_then(Json::as_u64), Some(1));
        let rows = p.get("points").and_then(Json::as_arr).unwrap();
        assert_eq!(rows[0].get("source").and_then(Json::as_str), Some("grid.a"));
        assert_eq!(rows[0].get("on_frontier").and_then(Json::as_bool), Some(true));
        assert_eq!(rows[1].get("on_frontier").and_then(Json::as_bool), Some(false));
        let text = p.get("text").and_then(Json::as_str).unwrap();
        assert!(text.contains("3t1d.v1000f4300t80"), "{text}");

        // No grid cells at all → stage error.
        let none = BTreeMap::new();
        assert!(execute("dvfs_frontier", &ctx(&params, &none)).is_err());
    }

    #[test]
    fn flaky_fails_once_then_succeeds() {
        let marker = std::env::temp_dir().join(format!(
            "pv3t1d_flaky_marker_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&marker);
        let mut params = Json::object();
        params.insert("marker", Json::Str(marker.display().to_string()));
        let inputs = BTreeMap::new();
        let first = execute("flaky", &ctx(&params, &inputs));
        assert!(first.unwrap_err().contains("transient"));
        let second = execute("flaky", &ctx(&params, &inputs)).unwrap();
        assert_eq!(second.get("kind").and_then(Json::as_str), Some("flaky"));
        let _ = std::fs::remove_file(&marker);

        // Missing marker param is a configuration error.
        let bare = Json::object();
        assert!(execute("flaky", &ctx(&bare, &inputs)).is_err());
    }

    #[test]
    fn fail_stage_error_mode_errors() {
        let params = Json::parse(r#"{"mode": "error", "message": "boom"}"#).unwrap();
        let inputs = BTreeMap::new();
        assert_eq!(execute("fail", &ctx(&params, &inputs)), Err("boom".into()));
    }

    #[test]
    #[should_panic(expected = "kernel crash")]
    fn fail_stage_panic_mode_panics() {
        let params = Json::parse(r#"{"message": "kernel crash"}"#).unwrap();
        let inputs = BTreeMap::new();
        let _ = execute("fail", &ctx(&params, &inputs));
    }

    #[test]
    fn bad_params_are_errors_not_panics() {
        let inputs = BTreeMap::new();
        for (kind, params) in [
            ("chip_campaign", r#"{"node": "28nm"}"#),
            ("chip_campaign", r#"{"corner": "apocalyptic"}"#),
            ("chip_campaign", r#"{"chips": 0}"#),
            ("retention_map", r#"{"hi_ns": -1}"#),
            ("dvfs_point", r#"{"technology": "5t"}"#),
            ("dvfs_point", r#"{"vdd": 9.0}"#),
            ("dvfs_point", r#"{"freq_ghz": 0}"#),
            ("dvfs_point", r#"{"temp_c": 500}"#),
            ("dvfs_point", r#"{"chips": 0}"#),
            ("sleep", r#"{"seconds": -2}"#),
        ] {
            let p = Json::parse(params).unwrap();
            assert!(execute(kind, &ctx(&p, &inputs)).is_err(), "{kind} {params}");
        }
    }
}
