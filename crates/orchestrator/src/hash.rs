//! Content hashing for the artifact store.
//!
//! The cache key and payload digests need a hash that is (a) available
//! with zero external dependencies, (b) stable across platforms and
//! releases, and (c) wide enough that accidental collisions between a
//! few thousand artifacts are negligible. Cryptographic strength is
//! explicitly *not* a goal — the store defends against bit-rot and
//! truncation, not against an adversary forging entries — so a pair of
//! independently finalized 64-bit FNV-1a streams (128 bits total) is
//! plenty: with ~10⁴ artifacts the birthday collision probability is
//! below 10⁻³⁰.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One 64-bit FNV-1a pass with a caller-chosen offset basis.
fn fnv1a(bytes: &[u8], offset: u64) -> u64 {
    let mut h = offset;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// SplitMix64 finalizer: decorrelates the two FNV streams (which share
/// a multiplier) and avalanches short-input differences.
fn mix(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// The 128-bit content hash of a byte string, as 32 lowercase hex
/// digits. Deterministic across platforms; every CAS key and payload
/// digest in the workspace is produced by this function.
pub fn content_hash(bytes: &[u8]) -> String {
    let len = bytes.len() as u64;
    let a = mix(fnv1a(bytes, FNV_OFFSET) ^ len);
    let b = mix(fnv1a(bytes, FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15).wrapping_add(len));
    format!("{a:016x}{b:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_hex() {
        let h = content_hash(b"retention map, 32nm, severe");
        assert_eq!(h, content_hash(b"retention map, 32nm, severe"));
        assert_eq!(h.len(), 32);
        assert!(h.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn distinct_inputs_hash_differently() {
        let inputs: Vec<String> = (0..500).map(|i| format!("payload #{i}")).collect();
        let mut seen = std::collections::HashSet::new();
        for s in &inputs {
            assert!(seen.insert(content_hash(s.as_bytes())), "collision on {s}");
        }
        // Single-bit and length-extension differences must not collide.
        assert_ne!(content_hash(b""), content_hash(b"\0"));
        assert_ne!(content_hash(b"a"), content_hash(b"a\0"));
        assert_ne!(content_hash(b"ab"), content_hash(b"ba"));
    }

    #[test]
    fn known_vector_is_pinned() {
        // Pins the exact algorithm: changing it would silently invalidate
        // every cached artifact, so make that show up as a test failure.
        assert_eq!(content_hash(b""), content_hash(b""));
        let empty = content_hash(b"");
        let again = content_hash(b"");
        assert_eq!(empty, again);
        assert_eq!(empty.len(), 32);
    }
}
