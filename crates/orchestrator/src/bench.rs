//! The `pv3t1d bench` micro-benchmark suite: a pinned set of throughput
//! probes over the workspace's hot paths, written as schema-versioned
//! `BENCH_<label>.json` baselines and diffed by [`compare`].
//!
//! The suite measures, at minimum:
//!
//! * `campaign.chips_per_s.w1` / `.wn` — Monte-Carlo campaign throughput
//!   at one worker and at the machine's worker count (plus the derived
//!   `campaign.speedup`);
//! * `cachesim.accesses_per_s` — raw [`cachesim::DataCache`] demand-access
//!   throughput under a retention scheme;
//! * `uarch.sim_cycles_per_s` — cycle-level pipeline simulation speed;
//! * `trace.replay_accesses_per_s` — streaming demand-access replay from
//!   a recorded trace *file* (decode + schedule + cache access), the hot
//!   path of `pv3t1d validate`;
//! * `orchestrator.warm_run_seconds` — end-to-end latency of a fully
//!   cached scenario run (the `--expect-cached` fast path);
//! * `trace.disabled_ns_per_call` — cost of one disabled tracer call,
//!   asserted to stay in the "no measurable overhead" regime.
//!
//! Regression policy lives in metric names: `*_per_s` and `*.speedup`
//! are higher-is-better, `*_seconds` and `*_ns_per_call` lower-is-better;
//! anything else is informational. [`compare`] applies a noise threshold
//! (percent) and reports regressions for the CLI to exit non-zero on.

use crate::spec::{Scenario, StageSpec};
use crate::sched::{run_scenario, RunOptions};
use bench_harness::RunScale;
use cachesim::{AccessKind, CacheConfig, DataCache, RetentionProfile, Scheme};
use obs::{Json, JsonError};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::time::Instant;
use t3cache::campaign::evaluate_grid_with_workers;
use t3cache::chip::{ChipModel, ChipPopulation};
use t3cache::evaluate::{EvalConfig, Evaluator};
use vlsi::tech::TechNode;
use vlsi::variation::VariationCorner;
use workloads::{RecordedTrace, SpecBenchmark, TraceReader};

/// Bench report schema version, bumped on breaking layout changes.
pub const BENCH_SCHEMA: u64 = 1;

/// Generous ceiling on one disabled tracer call: the fast path is a
/// single relaxed atomic load, so even a slow CI container sits orders
/// of magnitude below this. Breaching it means the disabled path grew
/// real work, which is exactly the regression the bound exists to catch.
pub const DISABLED_TRACE_NS_CEILING: f64 = 250.0;

/// One benchmark baseline: a named, schema-versioned set of metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Baseline label (`seed`, `ci`, a branch name, …).
    pub label: String,
    /// Whether the suite ran at the reduced `--quick` sizes.
    pub quick: bool,
    /// Metric name → value.
    pub metrics: BTreeMap<String, f64>,
}

impl BenchReport {
    /// An empty report.
    pub fn new(label: &str, quick: bool) -> Self {
        Self {
            label: label.to_string(),
            quick,
            metrics: BTreeMap::new(),
        }
    }

    /// Serializes to pretty-printed JSON (ends with a newline).
    pub fn to_json(&self) -> String {
        let mut metrics = Json::object();
        for (k, v) in &self.metrics {
            metrics.insert(k, Json::Num(*v));
        }
        let mut o = Json::object();
        o.insert("schema", Json::Num(BENCH_SCHEMA as f64));
        o.insert("label", Json::Str(self.label.clone()));
        o.insert("quick", Json::Bool(self.quick));
        o.insert("metrics", metrics);
        o.render_pretty()
    }

    /// Parses a report produced by [`BenchReport::to_json`].
    pub fn from_json(text: &str) -> Result<Self, JsonError> {
        let v = Json::parse(text)?;
        let bad = |msg: &str| JsonError {
            at: 0,
            msg: msg.to_string(),
        };
        let schema = v
            .get("schema")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("missing schema"))?;
        if schema != BENCH_SCHEMA {
            return Err(bad(&format!(
                "unsupported bench schema {schema} (expected {BENCH_SCHEMA})"
            )));
        }
        let mut metrics = BTreeMap::new();
        for (k, val) in v
            .get("metrics")
            .and_then(Json::as_obj)
            .ok_or_else(|| bad("missing metrics object"))?
        {
            metrics.insert(
                k.clone(),
                val.as_f64().ok_or_else(|| bad("non-numeric metric"))?,
            );
        }
        Ok(Self {
            label: v
                .get("label")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("missing label"))?
                .to_string(),
            quick: v
                .get("quick")
                .and_then(Json::as_bool)
                .ok_or_else(|| bad("missing quick"))?,
            metrics,
        })
    }

    /// Writes the report to `path`, creating parent directories.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json())
    }

    /// Reads and parses a report file.
    pub fn read_from(path: &Path) -> io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Self::from_json(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// How a metric's value relates to "better".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Throughput-style: a drop is a regression.
    HigherIsBetter,
    /// Latency-style: a rise is a regression.
    LowerIsBetter,
    /// Context only — never a regression.
    Informational,
}

/// Classifies a metric by naming convention (see the module docs).
/// `_per_s` may be followed by a variant tag (`campaign.chips_per_s.w1`);
/// `_ms` covers the serving-latency percentiles (`serve.p50_ms`,
/// `serve.p99_ms`), gated lower-is-better like the other latency styles.
pub fn direction_of(name: &str) -> Direction {
    if name.ends_with("_per_s") || name.contains("_per_s.") || name.ends_with(".speedup") {
        Direction::HigherIsBetter
    } else if name.ends_with("_seconds") || name.ends_with("_ns_per_call") || name.ends_with("_ms")
    {
        Direction::LowerIsBetter
    } else {
        Direction::Informational
    }
}

/// One metric's verdict in a comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareLine {
    /// Metric name.
    pub name: String,
    /// Baseline value, when the baseline has the metric.
    pub base: Option<f64>,
    /// Current value.
    pub current: f64,
    /// Percent change vs the baseline (positive = larger value).
    pub delta_pct: Option<f64>,
    /// Whether this line is a regression beyond the threshold.
    pub regressed: bool,
}

/// Diffs `current` against `base` with a `threshold_pct` noise band.
/// Returns the per-metric lines (sorted by name) and whether any
/// non-informational metric regressed beyond the threshold. Metrics
/// missing from the baseline are informational; metrics missing from the
/// current run are ignored (the baseline may be from a richer suite).
///
/// A gated (non-informational) metric whose baseline or current value is
/// zero or non-finite is **treated as regressed**: a percentage delta
/// cannot be formed, and every comparison against an Inf/NaN delta is
/// false — silently passing the gate on exactly the runs most likely to
/// be broken. A corrupt baseline must fail loudly, not quietly.
pub fn compare(base: &BenchReport, current: &BenchReport, threshold_pct: f64) -> (Vec<CompareLine>, bool) {
    let mut lines = Vec::new();
    let mut any_regressed = false;
    for (name, &cur) in &current.metrics {
        let gated = direction_of(name) != Direction::Informational;
        let line = match base.metrics.get(name) {
            Some(&b) if b != 0.0 && b.is_finite() && cur.is_finite() => {
                let delta_pct = (cur - b) / b * 100.0;
                let regressed = match direction_of(name) {
                    Direction::HigherIsBetter => delta_pct < -threshold_pct,
                    Direction::LowerIsBetter => delta_pct > threshold_pct,
                    Direction::Informational => false,
                };
                CompareLine {
                    name: name.clone(),
                    base: Some(b),
                    current: cur,
                    delta_pct: Some(delta_pct),
                    regressed,
                }
            }
            Some(&b) => CompareLine {
                // Uncomparable against a present baseline (zero / Inf /
                // NaN on either side): fail the gate for gated metrics.
                name: name.clone(),
                base: Some(b),
                current: cur,
                delta_pct: None,
                regressed: gated,
            },
            None => CompareLine {
                name: name.clone(),
                base: None,
                current: cur,
                delta_pct: None,
                regressed: false,
            },
        };
        any_regressed |= line.regressed;
        lines.push(line);
    }
    (lines, any_regressed)
}

/// Sizing knobs of one suite invocation.
#[derive(Debug, Clone, Copy)]
struct Sizes {
    chips: u32,
    sample_chips: u32,
    instructions: u64,
    warmup: u64,
    cache_accesses: u64,
    uarch_instructions: u64,
    trace_calls: u64,
    trace_records: u64,
}

impl Sizes {
    fn for_quick(quick: bool) -> Self {
        if quick {
            Self {
                chips: 4,
                sample_chips: 8,
                instructions: 20_000,
                warmup: 5_000,
                cache_accesses: 200_000,
                uarch_instructions: 60_000,
                trace_calls: 2_000_000,
                trace_records: 120_000,
            }
        } else {
            Self {
                chips: 16,
                sample_chips: 24,
                instructions: 50_000,
                warmup: 25_000,
                cache_accesses: 1_000_000,
                uarch_instructions: 300_000,
                trace_calls: 10_000_000,
                trace_records: 600_000,
            }
        }
    }
}

/// Runs the pinned suite and returns the report. `workers` sizes the
/// parallel campaign probe (pass the machine's campaign worker count).
///
/// # Panics
///
/// Panics if the disabled tracer's per-call cost exceeds
/// [`DISABLED_TRACE_NS_CEILING`] — the "near-zero overhead when
/// disabled" contract is load-bearing for instrumented simulator paths.
pub fn run_suite(label: &str, quick: bool, workers: usize, verbose: bool) -> BenchReport {
    let sizes = Sizes::for_quick(quick);
    let workers = workers.max(2);
    let mut report = BenchReport::new(label, quick);
    let mut note = |name: &str, value: f64| {
        if verbose {
            println!("{name:<36} {value:.4}");
        }
        report.metrics.insert(name.to_string(), value);
    };

    // --- disabled-tracer overhead -----------------------------------
    assert!(!obs::trace::is_enabled(), "bench requires the tracer off");
    let t0 = Instant::now();
    for i in 0..sizes.trace_calls {
        obs::trace::sim_instant("bench", "probe", i);
    }
    let ns_per_call = t0.elapsed().as_nanos() as f64 / sizes.trace_calls as f64;
    assert!(
        ns_per_call < DISABLED_TRACE_NS_CEILING,
        "disabled tracer costs {ns_per_call:.1} ns/call \
         (ceiling {DISABLED_TRACE_NS_CEILING} ns): the disabled fast path regressed"
    );
    note("trace.disabled_ns_per_call", ns_per_call);

    // --- disabled-logger overhead ------------------------------------
    // The NDJSON log layer makes the same near-zero-when-off promise as
    // the tracer, under the same ceiling.
    assert!(
        !obs::log::enabled(obs::log::Level::Error),
        "bench requires the log sink off"
    );
    let t0 = Instant::now();
    for i in 0..sizes.trace_calls {
        if obs::log::enabled(obs::log::Level::Debug) {
            obs::log::debug("probe", &[("i", obs::Json::Num(i as f64))]);
        }
    }
    let ns_per_call = t0.elapsed().as_nanos() as f64 / sizes.trace_calls as f64;
    assert!(
        ns_per_call < DISABLED_TRACE_NS_CEILING,
        "disabled logger costs {ns_per_call:.1} ns/call \
         (ceiling {DISABLED_TRACE_NS_CEILING} ns): the disabled fast path regressed"
    );
    note("log.disabled_ns_per_call", ns_per_call);

    // --- campaign throughput, 1 worker vs N -------------------------
    let pop = ChipPopulation::generate(
        TechNode::N32,
        VariationCorner::Typical.params(),
        sizes.chips,
        9_001,
    );
    let chips: Vec<&ChipModel> = pop.chips().iter().collect();
    let schemes = [Scheme::no_refresh_lru(), Scheme::rsp_fifo()];
    let eval = Evaluator::new(EvalConfig {
        benchmarks: vec![SpecBenchmark::Gzip],
        instructions: sizes.instructions,
        warmup: sizes.warmup,
        ..EvalConfig::quick()
    });
    eval.warm_traces();
    let ideal = eval.run_ideal(4);
    let mut chips_per_s = [0.0f64; 2];
    for (slot, w) in [(0, 1usize), (1, workers)] {
        let t0 = Instant::now();
        let _ = evaluate_grid_with_workers(&eval, &chips, &schemes, &ideal, w);
        let dt = t0.elapsed().as_secs_f64().max(1e-9);
        chips_per_s[slot] = (sizes.chips as f64 * schemes.len() as f64) / dt;
    }
    note("campaign.chips_per_s.w1", chips_per_s[0]);
    note("campaign.chips_per_s.wn", chips_per_s[1]);
    note("campaign.speedup", chips_per_s[1] / chips_per_s[0].max(1e-12));
    note("campaign.workers", workers as f64);

    // --- Monte-Carlo chip sampling throughput, 1 worker vs N --------
    // Times the SoA batch kernels (`vlsi::montecarlo::batch`) end to
    // end through `ChipPopulation::generate_with_workers`: quad-tree
    // plane gather, per-line normal fills, and batched retention
    // solves, sharded contiguously across the campaign workers.
    let mut sample_chips_per_s = [0.0f64; 2];
    for (slot, w) in [(0, 1usize), (1, workers)] {
        let t0 = Instant::now();
        let p = ChipPopulation::generate_with_workers(
            TechNode::N32,
            VariationCorner::Severe.params(),
            sizes.sample_chips,
            9_002,
            w,
        );
        let dt = t0.elapsed().as_secs_f64().max(1e-9);
        assert_eq!(p.len(), sizes.sample_chips as usize);
        sample_chips_per_s[slot] = sizes.sample_chips as f64 / dt;
    }
    note("campaign.sample_chips_per_s.w1", sample_chips_per_s[0]);
    note("campaign.sample_chips_per_s.wn", sample_chips_per_s[1]);

    // --- raw cache demand-access throughput -------------------------
    let mut cache = DataCache::new(
        CacheConfig::paper(Scheme::partial_refresh_dsp()),
        RetentionProfile::PerLine((0..1024).map(|i| 20_000 + (i % 7) * 3_000).collect()),
    );
    let mut x = 0x2545F4914F6CDD1Du64;
    let t0 = Instant::now();
    for n in 0..sizes.cache_accesses {
        // xorshift addresses; one store every 4th access.
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let kind = if n % 4 == 3 {
            AccessKind::Store
        } else {
            AccessKind::Load
        };
        let _ = cache.access(n * 2, x & 0xFFFF_FFC0, kind);
    }
    let dt = t0.elapsed().as_secs_f64().max(1e-9);
    note(
        "cachesim.accesses_per_s",
        sizes.cache_accesses as f64 / dt,
    );

    // --- cycle-level pipeline simulation speed ----------------------
    let recorded = RecordedTrace::record(
        SpecBenchmark::Gzip.profile(),
        9_002,
        sizes.uarch_instructions + 4_096,
    );
    let mut replay = recorded.replay();
    let mut cache = DataCache::ideal();
    let t0 = Instant::now();
    let sim = uarch::simulate(
        &mut replay,
        &mut cache,
        sizes.uarch_instructions,
        0.005,
    );
    let dt = t0.elapsed().as_secs_f64().max(1e-9);
    note("uarch.sim_cycles_per_s", sim.cycles as f64 / dt);

    // --- streaming trace-file replay throughput ---------------------
    // The `pv3t1d validate` hot path end to end: chunked decode from
    // disk, demand-schedule derivation, and replayed cache accesses.
    let trace_path =
        std::env::temp_dir().join(format!("pv3t1d_bench_trace_{}.pvtrace", std::process::id()));
    workloads::record_bench_to_path(SpecBenchmark::Gzip, 9_004, sizes.trace_records, &trace_path)
        .expect("recording the bench trace");
    let mut cache = DataCache::new(
        CacheConfig::paper(Scheme::partial_refresh_dsp()),
        RetentionProfile::PerLine((0..1024).map(|i| 20_000 + (i % 7) * 3_000).collect()),
    );
    let mut replayer = cachesim::AccessReplayer::new();
    let t0 = Instant::now();
    let mut reader = TraceReader::open(&trace_path).expect("bench trace readable");
    let mut accesses = 0u64;
    let mut idx = 0u64;
    while let Some(instr) = reader.next_record().expect("bench trace valid") {
        if let Some((slot, addr, kind)) = validate::demand_of(idx, &instr) {
            let _ = replayer.step(&mut cache, slot, addr, kind);
            accesses += 1;
        }
        idx += 1;
    }
    let dt = t0.elapsed().as_secs_f64().max(1e-9);
    assert_eq!(idx, sizes.trace_records, "bench trace replayed short");
    note("trace.replay_accesses_per_s", accesses as f64 / dt);
    let _ = std::fs::remove_file(&trace_path);

    // --- warm-cache orchestrator latency ----------------------------
    let dir = std::env::temp_dir().join(format!("pv3t1d_bench_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let sc = bench_scenario();
    let opts = RunOptions {
        jobs: 2,
        results_dir: dir.clone(),
        scale_override: Some(RunScale::QUICK),
        ..RunOptions::default()
    };
    let cold = run_scenario(&sc, &opts).expect("bench scenario is valid");
    assert!(cold.ok(), "bench scenario must run cleanly");
    let t0 = Instant::now();
    let warm = run_scenario(&sc, &opts).expect("bench scenario is valid");
    let warm_seconds = t0.elapsed().as_secs_f64();
    assert_eq!(warm.executed, 0, "second run must be fully cached");
    note("orchestrator.warm_run_seconds", warm_seconds);
    let _ = std::fs::remove_dir_all(&dir);

    report
}

/// The hermetic scenario behind `orchestrator.warm_run_seconds`: a tiny
/// chip campaign feeding a retention map and a report, built inline so
/// `pv3t1d bench` needs no scenario file on disk.
fn bench_scenario() -> Scenario {
    let mut sc = Scenario::new("bench_warm", RunScale::QUICK);
    sc.stages = vec![
        StageSpec::new("chips", "chip_campaign")
            .with_param("chips", Json::Num(2.0))
            .with_param("corner", Json::Str("typical".into()))
            .with_param("seed", Json::Num(9_003.0)),
        StageSpec::new("retention", "retention_map").with_deps(&["chips"]),
        StageSpec::new("report", "report").with_deps(&["chips", "retention"]),
    ];
    sc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(metrics: &[(&str, f64)]) -> BenchReport {
        let mut r = BenchReport::new("t", true);
        for (k, v) in metrics {
            r.metrics.insert(k.to_string(), *v);
        }
        r
    }

    #[test]
    fn report_round_trips() {
        let r = sample(&[("a.x_per_s", 123.5), ("b_seconds", 0.25)]);
        let back = BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let text = sample(&[]).to_json().replace("\"schema\": 1", "\"schema\": 9");
        assert!(BenchReport::from_json(&text).is_err());
    }

    #[test]
    fn direction_follows_naming_convention() {
        assert_eq!(direction_of("campaign.chips_per_s.w1"), Direction::HigherIsBetter);
        assert_eq!(direction_of("campaign.speedup"), Direction::HigherIsBetter);
        assert_eq!(direction_of("trace.replay_accesses_per_s"), Direction::HigherIsBetter);
        assert_eq!(direction_of("orchestrator.warm_run_seconds"), Direction::LowerIsBetter);
        assert_eq!(direction_of("trace.disabled_ns_per_call"), Direction::LowerIsBetter);
        assert_eq!(direction_of("serve.p50_ms"), Direction::LowerIsBetter);
        assert_eq!(direction_of("serve.p99_ms"), Direction::LowerIsBetter);
        assert_eq!(direction_of("serve.requests_per_s"), Direction::HigherIsBetter);
        assert_eq!(direction_of("serve.coalesced_total"), Direction::Informational);
        assert_eq!(direction_of("campaign.workers"), Direction::Informational);
    }

    #[test]
    fn self_comparison_never_regresses() {
        let r = sample(&[("a_per_s", 100.0), ("b_seconds", 2.0), ("c", 7.0)]);
        let (lines, regressed) = compare(&r, &r, 10.0);
        assert!(!regressed);
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().all(|l| l.delta_pct == Some(0.0)));
    }

    #[test]
    fn regressions_respect_direction_and_threshold() {
        let base = sample(&[("a_per_s", 100.0), ("b_seconds", 2.0), ("c", 7.0)]);
        // Throughput down 50%, latency up 50%, info metric wildly off.
        let cur = sample(&[("a_per_s", 50.0), ("b_seconds", 3.0), ("c", 700.0)]);
        let (_, regressed) = compare(&base, &cur, 10.0);
        assert!(regressed);
        // A generous threshold swallows both.
        let (_, regressed) = compare(&base, &cur, 60.0);
        assert!(!regressed);
        // Improvements are never regressions.
        let better = sample(&[("a_per_s", 400.0), ("b_seconds", 0.5), ("c", 7.0)]);
        let (_, regressed) = compare(&base, &better, 10.0);
        assert!(!regressed);
    }

    #[test]
    fn missing_baseline_metrics_are_informational() {
        let base = sample(&[("a_per_s", 100.0)]);
        let cur = sample(&[("a_per_s", 100.0), ("new_per_s", 5.0)]);
        let (lines, regressed) = compare(&base, &cur, 10.0);
        assert!(!regressed);
        let new = lines.iter().find(|l| l.name == "new_per_s").unwrap();
        assert_eq!(new.base, None);
        assert_eq!(new.delta_pct, None);
    }

    #[test]
    fn zero_baseline_on_a_gated_metric_fails_the_gate() {
        // The bug this pins: a zero baseline made delta_pct Inf/NaN,
        // every threshold comparison false, and the gate silently green
        // no matter how bad the current run was.
        let base = sample(&[("a_per_s", 0.0)]);
        let cur = sample(&[("a_per_s", 100.0)]);
        let (lines, regressed) = compare(&base, &cur, 10.0);
        assert!(regressed, "zero baseline must fail a gated metric");
        assert_eq!(lines[0].delta_pct, None);
        assert!(lines[0].regressed);

        // Same for a lower-is-better metric.
        let base = sample(&[("b_seconds", 0.0)]);
        let cur = sample(&[("b_seconds", 5.0)]);
        let (_, regressed) = compare(&base, &cur, 10.0);
        assert!(regressed);

        // An informational metric with a zero baseline stays quiet.
        let base = sample(&[("c", 0.0)]);
        let cur = sample(&[("c", 5.0)]);
        let (lines, regressed) = compare(&base, &cur, 10.0);
        assert!(!regressed);
        assert!(!lines[0].regressed);
    }

    #[test]
    fn nonfinite_values_on_a_gated_metric_fail_the_gate() {
        // NaN baseline.
        let base = sample(&[("a_per_s", f64::NAN)]);
        let cur = sample(&[("a_per_s", 100.0)]);
        let (_, regressed) = compare(&base, &cur, 10.0);
        assert!(regressed, "NaN baseline must fail a gated metric");

        // Infinite baseline.
        let base = sample(&[("a_per_s", f64::INFINITY)]);
        let (_, regressed) = compare(&base, &cur, 10.0);
        assert!(regressed, "Inf baseline must fail a gated metric");

        // NaN current value against a sane baseline.
        let base = sample(&[("a_per_s", 100.0)]);
        let cur = sample(&[("a_per_s", f64::NAN)]);
        let (lines, regressed) = compare(&base, &cur, 10.0);
        assert!(regressed, "NaN current must fail a gated metric");
        assert_eq!(lines[0].delta_pct, None);
    }
}
