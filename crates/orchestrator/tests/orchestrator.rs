//! End-to-end tests of the DAG scheduler and the content-addressed
//! cache — the ISSUE-pinned behaviors (the `pv3t1d` CLI itself is
//! exercised from `crates/serve/tests`):
//!
//! * **cache-hit determinism**: a second run of an unchanged scenario
//!   executes zero stages and reproduces the results section and
//!   fingerprint bit-for-bit;
//! * **failure isolation**: one stage panicking neither aborts siblings
//!   nor poisons the run manifest — dependents are skipped, the rest
//!   completes, and the manifest carries a per-stage structured error
//!   report;
//! * **timeouts**: a stage exceeding its wall-clock budget is marked
//!   timed out and abandoned while siblings finish;
//! * **corruption**: a damaged CAS entry is a miss (recomputed), never
//!   a crash.

use obs::Json;
use orchestrator::{
    run_scenario, RunOptions, RunSummary, Scenario, StageSpec, StageStatus,
};
use std::path::PathBuf;

fn temp_results(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pv3t1d_orch_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts(results_dir: &std::path::Path) -> RunOptions {
    RunOptions {
        results_dir: results_dir.to_path_buf(),
        ..RunOptions::default()
    }
}

fn status_of<'a>(summary: &'a RunSummary, id: &str) -> &'a StageStatus {
    &summary
        .stages
        .iter()
        .find(|s| s.id == id)
        .unwrap_or_else(|| panic!("stage {id} missing from summary"))
        .status
}

/// A small but real pipeline: Monte-Carlo chips → retention histogram,
/// plus an independent analytic stage.
fn real_pipeline() -> Scenario {
    let mut sc = Scenario::new("pipeline", bench_harness::RunScale::QUICK);
    sc.stages.push(
        StageSpec::new("chips", "chip_campaign")
            .with_param("chips", Json::Num(6.0))
            .with_param("seed", Json::Num(99.0))
            .with_param("corner", Json::Str("severe".into())),
    );
    sc.stages.push(StageSpec::new("map", "retention_map").with_deps(&["chips"]));
    sc.stages.push(StageSpec::new("stability", "sec21_stability"));
    sc
}

#[test]
fn second_run_is_fully_cached_and_bit_identical() {
    let dir = temp_results("determinism");
    let sc = real_pipeline();
    let opts = opts(&dir);

    let first = run_scenario(&sc, &opts).unwrap();
    assert!(first.ok(), "{first:?}");
    assert_eq!(first.executed, 3);
    assert_eq!(first.cache_hits, 0);

    let second = run_scenario(&sc, &opts).unwrap();
    assert!(second.ok());
    assert_eq!(second.executed, 0, "second run must execute zero stages");
    assert_eq!(second.cache_misses, 0);
    assert_eq!(second.cache_hits, 3);

    // The deterministic section — and the fingerprint derived from it —
    // must be byte-identical whether payloads were computed or cached.
    assert_eq!(
        first.results_json().render(),
        second.results_json().render()
    );
    assert_eq!(first.fingerprint(), second.fingerprint());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failing_stage_isolates_without_aborting_siblings() {
    let dir = temp_results("failure");
    let mut sc = Scenario::new("failure", bench_harness::RunScale::QUICK);
    sc.stages.push(
        StageSpec::new("bad", "fail").with_param("message", Json::Str("injected crash".into())),
    );
    sc.stages
        .push(StageSpec::new("doomed", "sleep").with_deps(&["bad"]));
    sc.stages
        .push(StageSpec::new("doomed_too", "report").with_deps(&["doomed"]));
    sc.stages
        .push(StageSpec::new("sibling", "sleep").with_param("seconds", Json::Num(0.01)));

    let summary = run_scenario(&sc, &opts(&dir)).unwrap();
    assert!(!summary.ok());
    assert!(
        matches!(status_of(&summary, "bad"), StageStatus::Failed(e) if e.message.contains("injected crash")),
        "{summary:?}"
    );
    // The panic cascades as skips, transitively — and only there.
    assert!(matches!(status_of(&summary, "doomed"), StageStatus::Skipped(_)));
    assert!(matches!(status_of(&summary, "doomed_too"), StageStatus::Skipped(_)));
    assert_eq!(*status_of(&summary, "sibling"), StageStatus::Ran);

    // The manifest carries a per-stage structured error report.
    let manifest = summary.to_json();
    let errors = manifest.get("errors").unwrap();
    let bad = errors.get("bad").unwrap();
    assert!(bad.get("message").unwrap().as_str().unwrap().contains("injected crash"));
    // The `fail` stage kind panics, and the classifier records that.
    assert_eq!(bad.get("kind").unwrap().as_str(), Some("panic"));
    assert!(errors.get("doomed").is_some());
    assert!(errors.get("sibling").is_none());
    assert_eq!(manifest.get("ok").unwrap().as_bool(), Some(false));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn slow_stage_times_out_while_siblings_complete() {
    let dir = temp_results("timeout");
    let mut sc = Scenario::new("timeout", bench_harness::RunScale::QUICK);
    sc.stages.push(
        StageSpec::new("slow", "sleep")
            .with_param("seconds", Json::Num(5.0))
            .with_timeout(0.2),
    );
    sc.stages
        .push(StageSpec::new("after_slow", "sleep").with_deps(&["slow"]));
    sc.stages
        .push(StageSpec::new("sibling", "sleep").with_param("seconds", Json::Num(0.01)));

    let t0 = std::time::Instant::now();
    let summary = run_scenario(&sc, &opts(&dir)).unwrap();
    assert!(
        t0.elapsed().as_secs_f64() < 4.0,
        "timeout must not wait for the slow stage"
    );
    assert!(matches!(status_of(&summary, "slow"), StageStatus::TimedOut(_)));
    assert!(matches!(status_of(&summary, "after_slow"), StageStatus::Skipped(_)));
    assert_eq!(*status_of(&summary, "sibling"), StageStatus::Ran);
    assert!(!summary.ok());

    // The abandoned stage's late result must not have been cached: a
    // rerun re-attempts it (and times out again) rather than hitting.
    assert_eq!(summary.metrics.counter("orchestrator.stages.timeout"), Some(1));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_cache_entry_is_recomputed_not_fatal() {
    let dir = temp_results("corruption");
    let sc = real_pipeline();
    let opts = opts(&dir);
    let first = run_scenario(&sc, &opts).unwrap();
    assert!(first.ok());

    // Damage the chip campaign's artifact on disk.
    let chips = first.stages.iter().find(|s| s.id == "chips").unwrap();
    let store = orchestrator::ArtifactStore::new(dir.join("cas"));
    let path = store.path_for(chips.key.as_ref().unwrap());
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, &text[..text.len() - 40]).unwrap();

    let second = run_scenario(&sc, &opts).unwrap();
    assert!(second.ok(), "corruption must be a miss, not an error");
    assert_eq!(second.executed, 1, "only the damaged stage recomputes");
    assert_eq!(second.cache_hits, 2);
    // The recomputation reproduces the identical artifact, so the
    // fingerprint is unchanged and the entry is healthy again.
    assert_eq!(first.fingerprint(), second.fingerprint());
    let third = run_scenario(&sc, &opts).unwrap();
    assert_eq!(third.executed, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn independent_stages_run_concurrently() {
    let dir = temp_results("parallel");
    let mut sc = Scenario::new("parallel", bench_harness::RunScale::QUICK);
    for i in 0..4 {
        sc.stages.push(
            StageSpec::new(&format!("s{i}"), "sleep").with_param("seconds", Json::Num(0.3)),
        );
    }
    let mut o = opts(&dir);
    o.jobs = 4;
    let t0 = std::time::Instant::now();
    let summary = run_scenario(&sc, &o).unwrap();
    let wall = t0.elapsed().as_secs_f64();
    assert!(summary.ok());
    // Serial would be ≥1.2s; allow generous slack for a loaded machine.
    assert!(wall < 1.0, "4 × 0.3s sleeps took {wall:.2}s at jobs=4");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn transient_failure_is_retried_to_success() {
    let dir = temp_results("retry_ok");
    std::fs::create_dir_all(&dir).unwrap();
    let marker = dir.join("flaky.marker");
    let mut sc = Scenario::new("retry_ok", bench_harness::RunScale::QUICK);
    sc.stages.push(
        StageSpec::new("wobbly", "flaky")
            .with_param("marker", Json::Str(marker.display().to_string()))
            .with_retries(2, 10.0),
    );
    sc.stages
        .push(StageSpec::new("after", "sleep").with_deps(&["wobbly"]));

    let summary = run_scenario(&sc, &opts(&dir)).unwrap();
    assert!(summary.ok(), "{summary:?}");
    assert_eq!(*status_of(&summary, "wobbly"), StageStatus::Ran);
    let wobbly = summary.stages.iter().find(|s| s.id == "wobbly").unwrap();
    assert_eq!(wobbly.attempts, 2, "one failure + one successful retry");
    assert_eq!(summary.metrics.counter("orchestrator.stages.retried"), Some(1));
    assert_eq!(summary.metrics.counter("orchestrator.stages.failed"), Some(0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn exhausted_retries_fail_and_cascade() {
    let dir = temp_results("retry_exhausted");
    let mut sc = Scenario::new("retry_exhausted", bench_harness::RunScale::QUICK);
    sc.stages.push(
        StageSpec::new("hopeless", "fail")
            .with_param("message", Json::Str("always broken".into()))
            .with_retries(2, 5.0),
    );
    sc.stages
        .push(StageSpec::new("downstream", "sleep").with_deps(&["hopeless"]));

    let summary = run_scenario(&sc, &opts(&dir)).unwrap();
    assert!(!summary.ok());
    assert!(
        matches!(status_of(&summary, "hopeless"), StageStatus::Failed(e) if e.message.contains("always broken"))
    );
    assert!(matches!(status_of(&summary, "downstream"), StageStatus::Skipped(_)));
    let hopeless = summary.stages.iter().find(|s| s.id == "hopeless").unwrap();
    assert_eq!(hopeless.attempts, 3, "initial attempt + two retries");
    assert_eq!(summary.metrics.counter("orchestrator.stages.retried"), Some(2));
    let _ = std::fs::remove_dir_all(&dir);
}

/// The tentpole acceptance behavior, in-process: cancel a chip campaign
/// mid-flight, then rerun — the rerun resumes from the per-unit
/// checkpoints and reproduces the exact fingerprint of a never-
/// interrupted run.
#[test]
fn cancelled_campaign_resumes_to_an_identical_fingerprint() {
    // Pin the campaign worker pool so the pacing below is predictable.
    // (Other tests in this binary don't depend on the worker count.)
    std::env::set_var("PV3T1D_WORKERS", "2");
    let mut sc = Scenario::new("resume", bench_harness::RunScale::QUICK);
    sc.stages.push(
        StageSpec::new("chips", "chip_campaign")
            .with_param("chips", Json::Num(10.0))
            .with_param("seed", Json::Num(7.0))
            .with_param("corner", Json::Str("severe".into()))
            .with_param("unit_sleep_ms", Json::Num(100.0)),
    );
    sc.stages.push(StageSpec::new("map", "retention_map").with_deps(&["chips"]));

    // Reference: a clean, uninterrupted run in its own results dir.
    let ref_dir = temp_results("resume_ref");
    let reference = run_scenario(&sc, &opts(&ref_dir)).unwrap();
    assert!(reference.ok());

    // Interrupted: cancel the token while units are still in flight.
    let dir = temp_results("resume_cut");
    let token = obs::CancelToken::new();
    let trigger = token.clone();
    let timer = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(150));
        trigger.cancel();
    });
    let mut o = opts(&dir);
    o.cancel = Some(token);
    let interrupted = run_scenario(&sc, &o).unwrap();
    timer.join().unwrap();
    assert!(!interrupted.ok(), "the cancel must land mid-campaign");
    assert!(
        matches!(status_of(&interrupted, "chips"), StageStatus::Cancelled(_)),
        "{interrupted:?}"
    );

    // Resume: same scenario, same results dir, no cancellation.
    let resumed = run_scenario(&sc, &opts(&dir)).unwrap();
    assert!(resumed.ok(), "{resumed:?}");
    assert_eq!(
        resumed.fingerprint(),
        reference.fingerprint(),
        "resumed run must be bit-identical to a never-interrupted one"
    );
    assert_eq!(
        resumed.results_json().render(),
        reference.results_json().render()
    );
    let replayed = resumed
        .metrics
        .counter("orchestrator.checkpoint.resumed_units")
        .unwrap_or(0);
    assert!(
        replayed >= 1,
        "at least one unit must come back from a checkpoint, got {replayed}"
    );
    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checked_in_scenarios_validate() {
    for name in ["quick.json", "paper_full.json", "resume_smoke.json", "serve_smoke.json"] {
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../scenarios")
            .join(name);
        let sc = Scenario::load(&path).unwrap_or_else(|e| panic!("{name}: {e}"));
        sc.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(!sc.stages.is_empty());
        // The paper scenarios culminate in a report stage; the CI
        // resume- and serve-smoke scenarios are deliberately short
        // synthetic slices.
        if !name.ends_with("_smoke.json") {
            assert!(
                sc.stages.iter().any(|s| s.kind == "report"),
                "{name} should end in a report stage"
            );
        }
    }
}
