//! Property test for the scheduler's liveness contract: whatever mix of
//! failures, timeouts, retry budgets, dependency edges, and mid-run
//! cancellation a scenario throws at it, `run_scenario` must return with
//! **every** stage in a terminal status — no hangs, no lost stages —
//! and successful stages must only ever sit on successful dependencies.

use obs::Json;
use orchestrator::{run_scenario, RunOptions, Scenario, StageSpec, StageStatus};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn temp_results() -> std::path::PathBuf {
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "pv3t1d_sched_prop_{}_{case}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One generated stage: what it does, how often it may retry, and which
/// earlier stage (if any) it depends on.
fn build_scenario(stages: &[(u8, u8, u8, u8)]) -> Scenario {
    let mut sc = Scenario::new("sched_prop", bench_harness::RunScale::QUICK);
    for (i, &(kind_sel, retries, backoff, dep_sel)) in stages.iter().enumerate() {
        let id = format!("s{i}");
        let mut spec = match kind_sel % 4 {
            // Healthy short stage.
            0 | 1 => StageSpec::new(&id, "sleep").with_param("seconds", Json::Num(0.01)),
            // Deterministic failure — retries burn out and it fails.
            2 => StageSpec::new(&id, "fail")
                .with_param("message", Json::Str(format!("injected s{i}"))),
            // Sleep that always overruns a tight wall-clock budget.
            _ => StageSpec::new(&id, "sleep")
                .with_param("seconds", Json::Num(0.3))
                .with_timeout(0.03),
        };
        spec = spec.with_retries(u32::from(retries % 3), f64::from(backoff % 20) + 1.0);
        if i > 0 && dep_sel % 3 == 0 {
            let dep = format!("s{}", usize::from(dep_sel) % i);
            spec = spec.with_deps(&[dep.as_str()]);
        }
        sc.stages.push(spec);
    }
    sc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_stage_reaches_a_terminal_status(
        stages in proptest::collection::vec(
            (0u8..4, 0u8..3, 0u8..20, 0u8..12),
            1..6,
        ),
        cancel_after_ms in 0u64..120,
        with_cancel in any::<bool>(),
    ) {
        let sc = build_scenario(&stages);
        prop_assert!(sc.validate().is_ok(), "generated scenario must be valid");
        let dir = temp_results();
        let mut opts = RunOptions {
            results_dir: dir.clone(),
            verbose: false,
            jobs: 2,
            ..RunOptions::default()
        };
        if with_cancel {
            let token = obs::CancelToken::new();
            let trigger = token.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(cancel_after_ms));
                trigger.cancel();
            });
            opts.cancel = Some(token);
        }

        let summary = run_scenario(&sc, &opts).expect("run_scenario must return");
        prop_assert_eq!(summary.stages.len(), sc.stages.len());

        for (spec, result) in sc.stages.iter().zip(&summary.stages) {
            // Terminal and attributed: every stage appears exactly once,
            // with a bounded attempt count.
            prop_assert_eq!(&result.id, &spec.id);
            prop_assert!(
                u64::from(result.attempts) <= u64::from(spec.retries) + 1,
                "stage {} used {} attempts with a budget of {}",
                spec.id, result.attempts, spec.retries
            );
            // A successful stage can only sit on successful deps.
            if result.status.is_ok() {
                for dep in &spec.deps {
                    let dep_status = &summary
                        .stages
                        .iter()
                        .find(|s| &s.id == dep)
                        .expect("dep exists")
                        .status;
                    prop_assert!(
                        dep_status.is_ok(),
                        "ok stage {} depends on non-ok {dep}: {dep_status:?}",
                        spec.id
                    );
                }
            }
            // Skipped / cancelled stages never execute, so they must not
            // report attempts beyond what actually launched.
            if matches!(result.status, StageStatus::Skipped(_)) {
                prop_assert_eq!(result.attempts, 0);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
