//! Criterion microbenchmarks: Monte-Carlo chip sampling cost (the
//! dominant setup cost of the distribution figures).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vlsi::cell6t::CellSize;
use vlsi::montecarlo::ChipFactory;
use vlsi::tech::TechNode;
use vlsi::variation::VariationCorner;

fn bench_chip_products(c: &mut Criterion) {
    let factory = ChipFactory::new(TechNode::N32, VariationCorner::Severe.params(), 1);

    c.bench_function("chip_line_retentions_1024", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            let chip = factory.chip(i % 64);
            black_box(chip.line_retentions())
        })
    });

    // Memoization delta: the first call pays the full 557k-cell solve;
    // repeat calls on the same chip must be O(1) slice returns. Compare
    // this entry against `chip_line_retentions_1024` (fresh chip per
    // iteration) — the gap is the memoization win.
    c.bench_function("chip_line_retentions_memoized_hit", |b| {
        let chip = factory.chip(0);
        chip.line_retentions_cached();
        b.iter(|| black_box(chip.line_retentions_cached().len()))
    });

    // The exact per-cell reference path (no interpolation table, no
    // cache): the denominator of the fast-path speedup.
    c.bench_function("chip_line_retentions_uncached_exact", |b| {
        let chip = factory.chip(0);
        b.iter(|| black_box(chip.line_retentions_uncached()))
    });

    c.bench_function("chip_worst_6t_access", |b| {
        let chip = factory.chip(0);
        b.iter(|| black_box(chip.worst_6t_access(CellSize::X1)))
    });

    c.bench_function("chip_leakage_pair", |b| {
        let chip = factory.chip(0);
        b.iter(|| {
            black_box((chip.leakage_6t(CellSize::X1), chip.leakage_3t1d()))
        })
    });

    c.bench_function("chip_word_retention_map_8", |b| {
        let chip = factory.chip(0);
        b.iter(|| black_box(chip.word_retention_map(8)))
    });
}

criterion_group!(benches, bench_chip_products);
criterion_main!(benches);
