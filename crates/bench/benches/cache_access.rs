//! Criterion microbenchmarks: demand-access throughput of the cache model
//! under each retention scheme.

use cachesim::{AccessKind, CacheConfig, DataCache, Geometry, RetentionProfile, Scheme};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn access_stream(cache: &mut DataCache, n: u64) -> u64 {
    let g = Geometry::paper_l1d();
    let mut hits = 0u64;
    for i in 0..n {
        let cycle = i * 2;
        let addr = g.address_of(i % 7, (i % 256) as u32);
        let kind = if i % 5 == 0 { AccessKind::Store } else { AccessKind::Load };
        if let Ok(r) = cache.access(cycle, addr, kind) {
            hits += r.hit as u64;
        }
    }
    hits
}

fn bench_schemes(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_access_10k");
    let cases = [
        ("ideal_6t", None),
        ("no_refresh_lru", Some(Scheme::no_refresh_lru())),
        ("partial_dsp", Some(Scheme::partial_refresh_dsp())),
        ("rsp_fifo", Some(Scheme::rsp_fifo())),
        ("global", Some(Scheme::global())),
    ];
    for (name, scheme) in cases {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut cache = match scheme {
                    None => DataCache::ideal(),
                    Some(s) => DataCache::new(
                        CacheConfig::paper(s),
                        RetentionProfile::uniform_cycles(30_000, 1024),
                    ),
                };
                black_box(access_stream(&mut cache, 10_000))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
