//! Criterion microbenchmarks isolating the ablation-relevant costs: RSP
//! shuffles, the line-refresh engine, and retention-profile construction.

use cachesim::{AccessKind, CacheConfig, DataCache, Geometry, RefreshPolicy, ReplacementPolicy, RetentionProfile, Scheme};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use t3cache::sensitivity::synthetic_profile;

fn bench_rsp_shuffle(c: &mut Criterion) {
    // Conflict-heavy stream in one set maximizes shuffle work.
    c.bench_function("rsp_fifo_conflict_set_2k", |b| {
        b.iter(|| {
            let mut cache = DataCache::new(
                CacheConfig::paper(Scheme::rsp_fifo()),
                RetentionProfile::uniform_cycles(50_000, 1024),
            );
            let g = Geometry::paper_l1d();
            for i in 0..2_000u64 {
                let addr = g.address_of(i % 6, 3);
                let _ = cache.access(i * 3, addr, AccessKind::Load);
            }
            black_box(cache.stats().line_moves)
        })
    });
}

fn bench_refresh_engine(c: &mut Criterion) {
    c.bench_function("full_refresh_steady_state_2k", |b| {
        b.iter(|| {
            let mut cache = DataCache::new(
                CacheConfig::paper(Scheme::new(RefreshPolicy::Full, ReplacementPolicy::Lru)),
                RetentionProfile::uniform_cycles(30_000, 1024),
            );
            let g = Geometry::paper_l1d();
            for i in 0..2_000u64 {
                let addr = g.address_of(1, (i % 256) as u32);
                let _ = cache.access(i * 10, addr, AccessKind::Load);
            }
            black_box(cache.stats().refreshes)
        })
    });
}

fn bench_profile_construction(c: &mut Criterion) {
    c.bench_function("synthetic_profile_1024", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            black_box(synthetic_profile(10_000, 0.25, 1024, seed))
        })
    });
}

criterion_group!(benches, bench_rsp_shuffle, bench_refresh_engine, bench_profile_construction);
criterion_main!(benches);
