//! Criterion microbenchmarks: simulated instructions per second of the
//! out-of-order pipeline over the synthetic workloads.

use cachesim::DataCache;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use uarch::sim::simulate;
use workloads::{SpecBenchmark, SyntheticTrace};

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_20k_instrs");
    group.throughput(Throughput::Elements(20_000));
    for bench in [SpecBenchmark::Gzip, SpecBenchmark::Mcf, SpecBenchmark::Mesa] {
        group.bench_function(bench.to_string(), |b| {
            b.iter(|| {
                let mut trace = SyntheticTrace::new(bench.profile(), 1);
                let mut cache = DataCache::ideal();
                black_box(simulate(&mut trace, &mut cache, 20_000, 0.0))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
