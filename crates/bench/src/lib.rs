//! Shared harness utilities for the figure/table reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper. They share the scaling knobs (full vs `--quick` runs), text
//! rendering helpers, and the paper-vs-measured annotation format.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use t3cache::evaluate::EvalConfig;
use vlsi::tech::TechNode;

/// Run-size knobs, honoring `--quick` (or `PV3T1D_QUICK=1`) for smoke runs.
#[derive(Debug, Clone, Copy)]
pub struct RunScale {
    /// Monte-Carlo chips for distribution figures.
    pub mc_chips: u32,
    /// Chips receiving full performance simulation.
    pub sim_chips: u32,
    /// Measured instructions per benchmark.
    pub instructions: u64,
    /// Warmup instructions per benchmark.
    pub warmup: u64,
}

impl RunScale {
    /// Detects the scale from argv/env.
    pub fn detect() -> Self {
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var("PV3T1D_QUICK").map(|v| v == "1").unwrap_or(false);
        if quick {
            Self {
                mc_chips: 40,
                sim_chips: 10,
                instructions: 40_000,
                warmup: 20_000,
            }
        } else {
            Self {
                mc_chips: 400,
                sim_chips: 100,
                instructions: 150_000,
                warmup: 75_000,
            }
        }
    }

    /// An evaluation config at this scale for a node.
    pub fn eval_config(&self, node: TechNode) -> EvalConfig {
        EvalConfig {
            node,
            instructions: self.instructions,
            warmup: self.warmup,
            ..EvalConfig::default()
        }
    }
}

/// Prints a figure/table banner.
pub fn banner(id: &str, title: &str) {
    println!("=====================================================================");
    println!("{id}: {title}");
    println!("=====================================================================");
}

/// Prints a `measured vs paper` annotation line.
pub fn compare(what: &str, measured: f64, paper: &str) {
    println!("  {what:<52} measured {measured:>9.3}   (paper: {paper})");
}

/// Renders a unit-scaled ASCII bar.
pub fn bar(frac: f64, width: usize) -> String {
    let n = (frac.clamp(0.0, 1.0) * width as f64).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < n { '#' } else { ' ' });
    }
    s
}

/// Minimum of a sample (`+∞` when empty) — the "worst chip" aggregations
/// the figure binaries report.
pub fn min(values: &[f64]) -> f64 {
    values.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum of a sample (`-∞` when empty).
pub fn max(values: &[f64]) -> f64 {
    values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Fraction of the sample strictly above `threshold` (0 when empty).
pub fn frac_above(values: &[f64], threshold: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|&&v| v > threshold).count() as f64 / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_clamps() {
        assert_eq!(bar(0.5, 4), "##  ");
        assert_eq!(bar(2.0, 4), "####");
        assert_eq!(bar(-1.0, 4), "    ");
    }

    #[test]
    fn min_max_handle_samples_and_empties() {
        let v = [0.97, 1.02, 0.88, 1.0];
        assert_eq!(min(&v), 0.88);
        assert_eq!(max(&v), 1.02);
        assert_eq!(min(&[]), f64::INFINITY);
        assert_eq!(max(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn frac_above_is_strict_and_total() {
        let v = [0.98, 0.99, 0.995, 1.0];
        assert_eq!(frac_above(&v, 0.99), 0.5); // strict: 0.99 not counted
        assert_eq!(frac_above(&v, 0.0), 1.0);
        assert_eq!(frac_above(&v, 2.0), 0.0);
        assert_eq!(frac_above(&[], 0.5), 0.0);
    }

    #[test]
    fn scale_has_sane_defaults() {
        let s = RunScale::detect();
        assert!(s.mc_chips >= 40);
        assert!(s.instructions >= 40_000);
        let cfg = s.eval_config(TechNode::N32);
        assert_eq!(cfg.benchmarks.len(), 8);
    }
}
