//! Shared harness utilities for the figure/table reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper. They share the scaling knobs (full vs `--quick` runs), text
//! rendering helpers, the paper-vs-measured annotation format, and the
//! [`RunRecorder`] that gives every binary its `--json <path>` run
//! manifest (default `results/<name>.json`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod figures;

use obs::RunManifest;
use std::path::PathBuf;
use std::time::Instant;
use t3cache::evaluate::EvalConfig;
use vlsi::tech::TechNode;

/// Run-size knobs, honoring `--quick` (or `PV3T1D_QUICK=1`) for smoke runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunScale {
    /// Monte-Carlo chips for distribution figures.
    pub mc_chips: u32,
    /// Chips receiving full performance simulation.
    pub sim_chips: u32,
    /// Measured instructions per benchmark.
    pub instructions: u64,
    /// Warmup instructions per benchmark.
    pub warmup: u64,
}

impl RunScale {
    /// The reduced `--quick` smoke-run scale.
    pub const QUICK: RunScale = RunScale {
        mc_chips: 40,
        sim_chips: 10,
        instructions: 40_000,
        warmup: 20_000,
    };

    /// The full paper-reproduction scale.
    pub const FULL: RunScale = RunScale {
        mc_chips: 400,
        sim_chips: 100,
        instructions: 150_000,
        warmup: 75_000,
    };

    /// Detects the scale from argv/env (see [`cli::BenchArgs::parse`]).
    pub fn detect() -> Self {
        cli::BenchArgs::parse().scale()
    }

    /// An evaluation config at this scale for a node.
    pub fn eval_config(&self, node: TechNode) -> EvalConfig {
        EvalConfig {
            node,
            instructions: self.instructions,
            warmup: self.warmup,
            ..EvalConfig::default()
        }
    }
}

/// Builds and writes one binary's JSON run manifest.
///
/// Construct it first thing with [`RunRecorder::from_args`], fill
/// [`RunRecorder::metrics`] (and the manifest's seed/node/scheme fields)
/// as the experiment runs, then call [`RunRecorder::finish`] last — it
/// stamps the wall clock and writes the manifest to the `--json <path>`
/// argument (default `results/<name>.json`).
#[derive(Debug)]
pub struct RunRecorder {
    /// The manifest under construction. Binaries set `seed`, `tech_node`
    /// and `scheme` directly; `workers`, `quick` and `git` are detected.
    pub manifest: RunManifest,
    path: PathBuf,
    started: Instant,
}

impl RunRecorder {
    /// A recorder honoring the binary's `--json <path>` / `--json=<path>`
    /// argument, defaulting to `results/<name>.json` (see
    /// [`cli::BenchArgs::recorder`]).
    pub fn from_args(name: &str) -> Self {
        cli::BenchArgs::parse().recorder(name)
    }

    /// A recorder writing to an explicit path (tests use this to bypass
    /// argument parsing); the quick flag is detected from argv/env.
    pub fn with_path(name: &str, path: impl Into<PathBuf>) -> Self {
        let quick = cli::BenchArgs::parse().quick;
        Self::new(name, path, quick)
    }

    /// The fully-explicit constructor: name, manifest path, and quick
    /// flag all supplied by the caller (argv untouched). Worker count and
    /// git provenance are still detected.
    pub fn new(name: &str, path: impl Into<PathBuf>, quick: bool) -> Self {
        let mut manifest = RunManifest::new(name);
        manifest.workers = t3cache::campaign::worker_count() as u64;
        manifest.quick = quick;
        manifest.git_describe = RunManifest::detect_git_describe();
        Self {
            manifest,
            path: path.into(),
            started: Instant::now(),
        }
    }

    /// The metrics registry the experiment records into.
    pub fn metrics(&mut self) -> &mut obs::MetricsRegistry {
        &mut self.manifest.metrics
    }

    /// [`compare`] that also records the measured value as a
    /// `compare.<slug>` gauge in the manifest.
    pub fn compare(&mut self, what: &str, measured: f64, paper: &str) {
        compare(what, measured, paper);
        self.manifest
            .metrics
            .set_gauge(&format!("compare.{}", metric_slug(what)), measured);
    }

    /// Stamps the wall clock, writes the manifest, and prints its path.
    /// A write failure warns instead of failing the run — the figure
    /// output on stdout is already complete by then.
    pub fn finish(mut self) -> PathBuf {
        self.manifest.wall_seconds = self.started.elapsed().as_secs_f64();
        match self.manifest.write_to(&self.path) {
            Ok(()) => println!("manifest: {}", self.path.display()),
            Err(e) => eprintln!(
                "warning: could not write manifest {}: {e}",
                self.path.display()
            ),
        }
        self.path
    }
}

/// Lowercases and collapses a human label into a metric-name slug:
/// `"IPC loss (severe)"` → `"ipc_loss_severe"`.
pub fn metric_slug(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    for ch in label.chars() {
        if ch.is_ascii_alphanumeric() {
            out.push(ch.to_ascii_lowercase());
        } else if ch == '.' || ch == '%' {
            // Keep dots (metric hierarchy) and a marker for percentages.
            out.push(if ch == '.' { '.' } else { 'p' });
        } else if !out.ends_with('_') && !out.is_empty() {
            out.push('_');
        }
    }
    out.trim_matches('_').to_string()
}

/// Prints a figure/table banner.
pub fn banner(id: &str, title: &str) {
    println!("=====================================================================");
    println!("{id}: {title}");
    println!("=====================================================================");
}

/// Formats a `measured vs paper` annotation line.
pub fn compare_line(what: &str, measured: f64, paper: &str) -> String {
    format!("  {what:<52} measured {measured:>9.3}   (paper: {paper})")
}

/// Prints a `measured vs paper` annotation line.
pub fn compare(what: &str, measured: f64, paper: &str) {
    println!("{}", compare_line(what, measured, paper));
}

/// Renders a unit-scaled ASCII bar.
pub fn bar(frac: f64, width: usize) -> String {
    let n = (frac.clamp(0.0, 1.0) * width as f64).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < n { '#' } else { ' ' });
    }
    s
}

/// Minimum of a sample (`+∞` when empty) — the "worst chip" aggregations
/// the figure binaries report.
pub fn min(values: &[f64]) -> f64 {
    values.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum of a sample (`-∞` when empty).
pub fn max(values: &[f64]) -> f64 {
    values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Fraction of the sample strictly above `threshold` (0 when empty).
pub fn frac_above(values: &[f64], threshold: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|&&v| v > threshold).count() as f64 / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_clamps() {
        assert_eq!(bar(0.5, 4), "##  ");
        assert_eq!(bar(2.0, 4), "####");
        assert_eq!(bar(-1.0, 4), "    ");
    }

    #[test]
    fn min_max_handle_samples_and_empties() {
        let v = [0.97, 1.02, 0.88, 1.0];
        assert_eq!(min(&v), 0.88);
        assert_eq!(max(&v), 1.02);
        assert_eq!(min(&[]), f64::INFINITY);
        assert_eq!(max(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn frac_above_is_strict_and_total() {
        let v = [0.98, 0.99, 0.995, 1.0];
        assert_eq!(frac_above(&v, 0.99), 0.5); // strict: 0.99 not counted
        assert_eq!(frac_above(&v, 0.0), 1.0);
        assert_eq!(frac_above(&v, 2.0), 0.0);
        assert_eq!(frac_above(&[], 0.5), 0.0);
    }

    #[test]
    fn metric_slug_normalizes_labels() {
        assert_eq!(metric_slug("IPC loss (severe)"), "ipc_loss_severe");
        assert_eq!(metric_slug("refresh energy %"), "refresh_energy_p");
        assert_eq!(metric_slug("scheme.RSP-FIFO perf"), "scheme.rsp_fifo_perf");
    }

    #[test]
    fn recorder_records_compares_and_writes() {
        let dir = std::env::temp_dir().join(format!("bench_recorder_{}", std::process::id()));
        let path = dir.join("unit.json");
        let mut rec = RunRecorder::with_path("unit", &path);
        rec.manifest.seed = Some(42);
        rec.compare("mean IPC loss", 0.031, "≈3%");
        rec.metrics().inc("events", 7);
        let written = rec.finish();
        let back = obs::RunManifest::read_from(&written).unwrap();
        assert_eq!(back.name, "unit");
        assert_eq!(back.seed, Some(42));
        assert_eq!(back.metrics.counter("events"), Some(7));
        assert_eq!(back.metrics.gauge("compare.mean_ipc_loss"), Some(0.031));
        assert!(back.wall_seconds >= 0.0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scale_has_sane_defaults() {
        let s = RunScale::detect();
        assert!(s.mc_chips >= 40);
        assert!(s.instructions >= 40_000);
        let cfg = s.eval_config(TechNode::N32);
        assert_eq!(cfg.benchmarks.len(), 8);
    }
}
