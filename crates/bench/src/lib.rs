//! Shared harness utilities for the figure/table reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper. They share the scaling knobs (full vs `--quick` runs), text
//! rendering helpers, and the paper-vs-measured annotation format.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use t3cache::evaluate::EvalConfig;
use vlsi::tech::TechNode;

/// Run-size knobs, honoring `--quick` (or `PV3T1D_QUICK=1`) for smoke runs.
#[derive(Debug, Clone, Copy)]
pub struct RunScale {
    /// Monte-Carlo chips for distribution figures.
    pub mc_chips: u32,
    /// Chips receiving full performance simulation.
    pub sim_chips: u32,
    /// Measured instructions per benchmark.
    pub instructions: u64,
    /// Warmup instructions per benchmark.
    pub warmup: u64,
}

impl RunScale {
    /// Detects the scale from argv/env.
    pub fn detect() -> Self {
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var("PV3T1D_QUICK").map(|v| v == "1").unwrap_or(false);
        if quick {
            Self {
                mc_chips: 40,
                sim_chips: 10,
                instructions: 40_000,
                warmup: 20_000,
            }
        } else {
            Self {
                mc_chips: 400,
                sim_chips: 100,
                instructions: 150_000,
                warmup: 75_000,
            }
        }
    }

    /// An evaluation config at this scale for a node.
    pub fn eval_config(&self, node: TechNode) -> EvalConfig {
        EvalConfig {
            node,
            instructions: self.instructions,
            warmup: self.warmup,
            ..EvalConfig::default()
        }
    }
}

/// Prints a figure/table banner.
pub fn banner(id: &str, title: &str) {
    println!("=====================================================================");
    println!("{id}: {title}");
    println!("=====================================================================");
}

/// Prints a `measured vs paper` annotation line.
pub fn compare(what: &str, measured: f64, paper: &str) {
    println!("  {what:<52} measured {measured:>9.3}   (paper: {paper})");
}

/// Renders a unit-scaled ASCII bar.
pub fn bar(frac: f64, width: usize) -> String {
    let n = (frac.clamp(0.0, 1.0) * width as f64).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < n { '#' } else { ' ' });
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_clamps() {
        assert_eq!(bar(0.5, 4), "##  ");
        assert_eq!(bar(2.0, 4), "####");
        assert_eq!(bar(-1.0, 4), "    ");
    }

    #[test]
    fn scale_has_sane_defaults() {
        let s = RunScale::detect();
        assert!(s.mc_chips >= 40);
        assert!(s.instructions >= 40_000);
        let cfg = s.eval_config(TechNode::N32);
        assert_eq!(cfg.benchmarks.len(), 8);
    }
}
