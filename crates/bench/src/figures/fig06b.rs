//! Figure 6b stage: 3T1D cache retention-time distribution under typical
//! variation, with performance and dynamic power vs retention time under
//! the global refresh scheme.
//!
//! Paper shape: chip retention spans ≈476–3094 ns; performance stays
//! within ≈2 % of ideal above ≈700 ns with a knee near 500 ns; total
//! dynamic power runs 1.3–2.25× ideal (refresh share growing as retention
//! shrinks); 97 % of chips lose <2 %.

use super::StageOutput;
use crate::{bar, min, RunScale};
use cachesim::{CacheConfig, DataCache, Scheme};
use std::fmt::Write as _;
use t3cache::campaign::map_indexed;
use t3cache::chip::ChipModel;
use t3cache::evaluate::Evaluator;
use vlsi::montecarlo::ChipFactory;
use vlsi::power::MemKind;
use vlsi::stats::Histogram;
use vlsi::tech::TechNode;
use vlsi::variation::VariationCorner;

/// One simulated pick: either discarded by the global-scheme feasibility
/// check or a full measurement row.
enum PickRow {
    Discarded {
        retention_ns: f64,
    },
    Measured {
        retention_ns: f64,
        perf: f64,
        worst_bench: String,
        worst: f64,
        normal_dyn: f64,
        refresh_dyn: f64,
        total_dyn: f64,
    },
}

/// Runs the Figure 6b retention/performance/power study at the given
/// scale.
pub fn run(scale: &RunScale) -> StageOutput {
    let mut out = StageOutput::new("fig06b");
    out.manifest.seed = Some(20_241);
    out.manifest.tech_node = Some(TechNode::N32.to_string());
    out.manifest.scheme = Some(Scheme::global().to_string());
    out.banner(
        "Figure 6b",
        "3T1D retention distribution, performance and dynamic power (typical, 32 nm, global refresh)",
    );
    let factory = ChipFactory::new(TechNode::N32, VariationCorner::Typical.params(), 20_241);

    // Retention histogram over the Monte-Carlo population. Chip sampling
    // fans out over contiguous index shards (one per worker) and runs the
    // SoA batch kernels per chip; chip i depends only on (base_seed, i),
    // so the histogram is identical whatever the shard count.
    let (models, sample_report) = map_indexed(scale.mc_chips.min(160) as usize, |i| {
        ChipModel::new(&factory.chip(i as u32))
    });
    let shard_sizes: Vec<String> = sample_report
        .per_worker_units
        .iter()
        .map(ToString::to_string)
        .collect();
    let _ = writeln!(
        out.text,
        "sampled {} chips in {} shard(s) of {} chips at {:.1} chips/s",
        sample_report.units,
        sample_report.workers,
        shard_sizes.join("/"),
        sample_report.units as f64 / sample_report.wall.as_secs_f64().max(1e-9),
    );
    out.metrics().set_gauge(
        "campaign.sample.chips_per_s",
        sample_report.units as f64 / sample_report.wall.as_secs_f64().max(1e-9),
    );
    out.timing.absorb(&sample_report);
    let mut models = models;
    let mut hist = Histogram::new(357.0, 3213.0, 12); // 238-ns bins on the paper's tick grid
    for chip in &models {
        hist.push(chip.cache_retention().ns());
    }
    let _ = writeln!(out.text, "retention (ns)  chip probability");
    for (center, frac) in hist.iter() {
        let _ = writeln!(out.text, "{center:>12.0}  {frac:>6.3} {}", bar(frac / 0.25, 30));
    }
    let _ = writeln!(
        out.text,
        "  (underflow {} / overflow {} of {})",
        hist.underflow(),
        hist.overflow(),
        hist.total()
    );
    let retention_sum: f64 = models.iter().map(|c| c.cache_retention().ns()).sum();
    out.metrics().put_histogram(
        "retention_ns",
        obs::FixedHistogram::from_buckets(
            357.0,
            3213.0,
            hist.counts().to_vec(),
            hist.underflow(),
            hist.overflow(),
            retention_sum,
        ),
    );

    // Performance & power vs retention: pick chips spanning the range.
    models.sort_by(|a, b| {
        a.cache_retention()
            .partial_cmp(&b.cache_retention())
            .expect("finite")
    });
    let picks: Vec<&ChipModel> = (0..scale.sim_chips.min(12))
        .map(|k| {
            let idx =
                (k as usize * (models.len() - 1)) / (scale.sim_chips.min(12) as usize - 1).max(1);
            &models[idx]
        })
        .collect();

    let eval = Evaluator::new(scale.eval_config(TechNode::N32));
    let ideal = eval.run_ideal(4);
    let cfg = CacheConfig::paper(Scheme::global());

    let (rows, sim_report) = map_indexed(picks.len(), |i| {
        let chip = picks[i];
        let retention_ns = chip.cache_retention().ns();
        if !DataCache::global_scheme_feasible(chip.retention_profile(), &cfg) {
            return PickRow::Discarded { retention_ns };
        }
        let suite = eval.run_scheme(chip.retention_profile(), Scheme::global(), 4);
        let perf = suite.normalized_performance(&ideal, 1.0);
        let (wb, worst) = suite.worst_bench_performance(&ideal);
        let total = suite.normalized_dynamic_power(&ideal, MemKind::Dram3t1d);
        // Split: recompute without refresh events to estimate the share.
        let mut no_refresh = 0.0;
        let mut refresh_only = 0.0;
        for r in &suite.runs {
            let mut ev = r.cache.energy_events();
            let refreshes = ev.line_refreshes;
            ev.line_refreshes = 0;
            no_refresh += ev.total_energy(suite.node, MemKind::Dram3t1d).value();
            ev.line_refreshes = refreshes;
            ev.accesses = 0;
            ev.extra_l2_accesses = 0;
            ev.line_moves = 0;
            refresh_only += ev.total_energy(suite.node, MemKind::Dram3t1d).value();
        }
        let base = ideal.mean_dynamic_power(MemKind::Sram6t).value() * suite.total_time().value();
        PickRow::Measured {
            retention_ns,
            perf,
            worst_bench: wb.to_string(),
            worst,
            normal_dyn: no_refresh / base,
            refresh_dyn: refresh_only / base,
            total_dyn: total,
        }
    });
    out.timing.absorb(&sim_report);

    let _ = writeln!(out.text);
    let _ = writeln!(
        out.text,
        "{:>12} {:>8} {:>10} {:>12} {:>12} {:>12}",
        "retention", "perf", "worst-bench", "normal dyn", "refresh dyn", "total dyn"
    );
    let mut all_perf = Vec::new();
    let mut all_retentions = Vec::new();
    for row in &rows {
        match row {
            PickRow::Discarded { retention_ns } => {
                let _ = writeln!(
                    out.text,
                    "{retention_ns:>10.0}ns  -- discarded (retention below refresh-pass feasibility) --"
                );
            }
            PickRow::Measured {
                retention_ns,
                perf,
                worst_bench,
                worst,
                normal_dyn,
                refresh_dyn,
                total_dyn,
            } => {
                all_perf.push(*perf);
                all_retentions.push(*retention_ns);
                let slug = format!("pick.{retention_ns:04.0}ns");
                out.metrics().set_gauge(&format!("{slug}.perf"), *perf);
                out.metrics().set_gauge(&format!("{slug}.total_dyn"), *total_dyn);
                out.metrics().set_gauge(&format!("{slug}.refresh_dyn"), *refresh_dyn);
                let _ = writeln!(
                    out.text,
                    "{:>10.0}ns {:>8.3} {:>4} {:>5.3} {:>12.2} {:>12.2} {:>12.2}",
                    retention_ns, perf, worst_bench, worst, normal_dyn, refresh_dyn, total_dyn
                );
            }
        }
    }

    let _ = writeln!(out.text);
    if !all_perf.is_empty() {
        out.compare(
            "worst simulated chip performance",
            min(&all_perf),
            ">=0.94 above the knee (Fig. 6b)",
        );
        // Population-weighted "<2% loss" fraction: the simulated picks span
        // the retention range uniformly, so map the 0.98-crossing back onto
        // the full Monte-Carlo population.
        let crossing = all_retentions
            .iter()
            .zip(&all_perf)
            .filter(|(_, p)| **p > 0.98)
            .map(|(r, _)| *r)
            .fold(f64::INFINITY, f64::min);
        let pop_within = models
            .iter()
            .filter(|c| c.cache_retention().ns() >= crossing)
            .count() as f64
            / models.len() as f64;
        out.compare(
            "population fraction losing <2% (weighted)",
            pop_within,
            "~0.97",
        );
    }
    out
}
