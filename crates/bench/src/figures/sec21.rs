//! §2.1 stages: 6T SRAM read-stability under variation, and manufacturing
//! yield of an unstable 6T cache under classical rescue mechanisms.
//!
//! Paper anchors: ≈0.4 % bit-flip rate at 32 nm under typical variation,
//! which makes a 256-bit line fail with probability 1 − 0.996²⁵⁶ ≈ 64 %;
//! "line-level redundancy is straightforward to implement, but is
//! ineffective" — not even ECC + spares ships the cache, while every
//! 3T1D chip ships under the line-level retention schemes.

use super::StageOutput;
use crate::RunScale;
use std::fmt::Write as _;
use t3cache::campaign::map_indexed;
use t3cache::rescue::rescue_report;
use vlsi::cell6t::{bit_flip_probability, line_failure_probability, CellSize};
use vlsi::tech::TechNode;
use vlsi::variation::VariationCorner;

/// Runs the §2.1 6T stability table (analytic; scale-independent).
pub fn stability(_scale: &RunScale) -> StageOutput {
    let mut out = StageOutput::new("sec21_stability");
    out.banner("Section 2.1", "6T cell stability under process variation");
    // Analytic study, but run through the campaign engine like its sim
    // siblings: one unit per (node, corner) cell of the table.
    let corners = [VariationCorner::Typical, VariationCorner::Severe];
    let units = TechNode::ALL.len() * corners.len();
    let (rows, report) = map_indexed(units, |i| {
        let node = TechNode::ALL[i / corners.len()];
        let corner = corners[i % corners.len()];
        let p = bit_flip_probability(node, CellSize::X1, &corner.params());
        (node, corner, p)
    });
    out.timing.absorb(&report);
    let _ = writeln!(out.text);
    let _ = writeln!(
        out.text,
        "{:<10} {:<10} {:>14} {:>16} {:>16}",
        "node", "corner", "bit flip", "256b line fail", "512b line fail"
    );
    for (node, corner, p) in rows {
        out.metrics()
            .set_gauge(&format!("bit_flip.{node}.{corner}"), p);
        let _ = writeln!(
            out.text,
            "{:<10} {:<10} {:>13.4}% {:>15.1}% {:>15.1}%",
            node.to_string(),
            corner.to_string(),
            p * 100.0,
            line_failure_probability(p, 256) * 100.0,
            line_failure_probability(p, 512) * 100.0
        );
    }
    let _ = writeln!(out.text);
    let p32 = bit_flip_probability(
        TechNode::N32,
        CellSize::X1,
        &VariationCorner::Typical.params(),
    );
    out.compare("32nm typical bit-flip rate (%)", p32 * 100.0, "~0.4%");
    out.compare(
        "256-bit line failure probability",
        line_failure_probability(p32, 256),
        "~0.64",
    );
    let p2x = bit_flip_probability(
        TechNode::N32,
        CellSize::X2,
        &VariationCorner::Typical.params(),
    );
    out.compare(
        "32nm 2X-cell bit-flip rate (%)",
        p2x * 100.0,
        "far below 1X (area law)",
    );
    let _ = writeln!(
        out.text,
        "\n3T1D cells have no read-disturb fighting: stability is not a failure mode;"
    );
    let _ = writeln!(
        out.text,
        "their only 'instability' is finite retention, handled architecturally (Section 4)."
    );
    out
}

/// Runs the §2.1 extended rescue-mechanism yield table (analytic;
/// scale-independent).
pub fn redundancy(_scale: &RunScale) -> StageOutput {
    let mut out = StageOutput::new("sec21_redundancy");
    out.banner(
        "Section 2.1 (extended)",
        "6T rescue-mechanism yield vs bit-flip rates",
    );
    let _ = writeln!(
        out.text,
        "{:<8} {:<9} {:>10} {:>10} {:>12} {:>12} {:>14}",
        "node", "corner", "bit flip", "no rescue", "16 spares", "SECDED/64b", "SECDED+spares"
    );
    for node in TechNode::ALL {
        for corner in [VariationCorner::Typical, VariationCorner::Severe] {
            let r = rescue_report(node, &corner.params());
            out.metrics()
                .set_gauge(&format!("yield.{node}.{corner}.none"), r.yield_none);
            out.metrics()
                .set_gauge(&format!("yield.{node}.{corner}.both"), r.yield_both);
            let _ = writeln!(
                out.text,
                "{:<8} {:<9} {:>9.4}% {:>9.1}% {:>11.1}% {:>11.1}% {:>13.1}%",
                node.to_string(),
                corner.to_string(),
                r.bit_flip * 100.0,
                r.yield_none * 100.0,
                r.yield_spares * 100.0,
                r.yield_secded * 100.0,
                r.yield_both * 100.0
            );
        }
    }
    let _ = writeln!(out.text);
    let r32 = rescue_report(TechNode::N32, &VariationCorner::Typical.params());
    out.compare("32nm typical bit-flip rate (%)", r32.bit_flip * 100.0, "~0.4%");
    out.compare(
        "32nm yield with ECC + spares",
        r32.yield_both,
        "'ineffective' (~0)",
    );
    let _ = writeln!(
        out.text,
        "\n3T1D contrast: stability is not a failure mode; under the line-level"
    );
    let _ = writeln!(
        out.text,
        "retention schemes of Section 4 every fabricated chip ships (Fig. 10),"
    );
    let _ = writeln!(
        out.text,
        "with dead lines absorbed by DSP/RSP placement instead of scrapped die."
    );
    out
}
