//! Figure 11 stage: performance of the three line-level schemes on the
//! good/median/bad chips across associativities (1/2/4/8-way).
//!
//! Paper shape: with ≥2 ways the retention-aware schemes can steer around
//! dead lines and RSP-FIFO / partial-refresh-DSP clearly beat
//! no-refresh/LRU on the bad chip; direct-mapped caches get no placement
//! benefit (only refresh helps).
//!
//! The four ideal baselines are computed once and the grade × scheme ×
//! ways grid runs on the [`t3cache::campaign`] engine.

use super::StageOutput;
use crate::{metric_slug, RunScale};
use cachesim::Scheme;
use std::fmt::Write as _;
use t3cache::campaign::map_indexed;
use t3cache::chip::{ChipGrade, ChipModel, ChipPopulation};
use t3cache::evaluate::Evaluator;
use vlsi::tech::TechNode;
use vlsi::variation::VariationCorner;

const WAYS: [u32; 4] = [1, 2, 4, 8];

/// Runs the Figure 11 associativity sweep at the given scale.
pub fn run(scale: &RunScale) -> StageOutput {
    let mut out = StageOutput::new("fig11");
    out.manifest.seed = Some(20_246);
    out.manifest.tech_node = Some(TechNode::N32.to_string());
    out.banner(
        "Figure 11",
        "schemes vs associativity on good/median/bad chips (severe, 32 nm)",
    );
    let pop = ChipPopulation::generate(
        TechNode::N32,
        VariationCorner::Severe.params(),
        scale.sim_chips.max(40),
        20_246,
    );
    let eval = Evaluator::new(scale.eval_config(TechNode::N32));

    // The four ideal baselines, each computed exactly once.
    let (ideals, ideal_report) = map_indexed(WAYS.len(), |w| eval.run_ideal(WAYS[w]));
    out.timing.absorb(&ideal_report);

    let schemes = [
        ("no-refresh/LRU", Scheme::no_refresh_lru()),
        ("partial-refresh/DSP", Scheme::partial_refresh_dsp()),
        ("RSP-FIFO", Scheme::rsp_fifo()),
    ];
    let grades = [ChipGrade::Good, ChipGrade::Median, ChipGrade::Bad];
    let exemplars: Vec<&ChipModel> = grades.iter().map(|&g| pop.select(g)).collect();

    // One campaign over grade × scheme × ways (row-major).
    let units = grades.len() * schemes.len() * WAYS.len();
    let (flat, grid_report) = map_indexed(units, |i| {
        let g = i / (schemes.len() * WAYS.len());
        let s = (i / WAYS.len()) % schemes.len();
        let w = i % WAYS.len();
        let suite = eval.run_scheme(exemplars[g].retention_profile(), schemes[s].1, WAYS[w]);
        suite.normalized_performance(&ideals[w], 1.0)
    });
    out.timing.absorb(&grid_report);

    let perf = |g: usize, s: usize, w: usize| flat[(g * schemes.len() + s) * WAYS.len() + w];
    for (g, grade) in grades.iter().enumerate() {
        for (s, (name, _)) in schemes.iter().enumerate() {
            for (w, ways) in WAYS.iter().enumerate() {
                out.metrics().set_gauge(
                    &format!("perf.{grade}.{}.{ways}way", metric_slug(name)),
                    perf(g, s, w),
                );
            }
        }
    }
    let mut bad_gap_4way = 0.0;
    let mut bad_gap_1way = 0.0;
    for (g, grade) in grades.iter().enumerate() {
        let _ = writeln!(out.text);
        let _ = writeln!(out.text, "{grade} chip:");
        let _ = writeln!(
            out.text,
            "{:<22} {:>8} {:>8} {:>8} {:>8}",
            "scheme", "1-way", "2-way", "4-way", "8-way"
        );
        for (s, (name, _)) in schemes.iter().enumerate() {
            let _ = writeln!(
                out.text,
                "{:<22} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
                name,
                perf(g, s, 0),
                perf(g, s, 1),
                perf(g, s, 2),
                perf(g, s, 3)
            );
        }
        if matches!(grade, ChipGrade::Bad) {
            bad_gap_4way = perf(g, 2, 2) - perf(g, 0, 2);
            bad_gap_1way = perf(g, 2, 0) - perf(g, 0, 0);
        }
    }

    let _ = writeln!(out.text);
    out.compare(
        "bad chip, 4-way: RSP-FIFO advantage over no-refresh/LRU",
        bad_gap_4way,
        "significant (placement works)",
    );
    out.compare(
        "bad chip, 1-way: RSP-FIFO advantage over no-refresh/LRU",
        bad_gap_1way,
        "~0 (no placement freedom)",
    );
    out
}
