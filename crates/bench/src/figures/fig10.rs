//! Figure 10 stage: performance and dynamic power of 100 severely-varied
//! chips under the three representative line-level schemes.
//!
//! Paper shape: every chip stays functional; RSP-FIFO and
//! partial-refresh/DSP hold performance within ≈3 % (most chips <1 %)
//! with <10 % dynamic-power overhead; no-refresh/LRU loses more and its
//! power overhead reaches ≈60 % on the worst chips (extra L2 traffic).

use super::StageOutput;
use crate::{frac_above, max, min, RunScale};
use cachesim::Scheme;
use std::fmt::Write as _;
use t3cache::campaign::evaluate_grid;
use t3cache::chip::{ChipModel, ChipPopulation};
use t3cache::evaluate::Evaluator;
use vlsi::tech::TechNode;
use vlsi::variation::VariationCorner;

/// Runs the Figure 10 hundred-chip study at the given scale.
pub fn run(scale: &RunScale) -> StageOutput {
    let mut out = StageOutput::new("fig10");
    out.manifest.seed = Some(20_245);
    out.manifest.tech_node = Some(TechNode::N32.to_string());
    out.banner(
        "Figure 10",
        "100 severe-variation chips under three line-level schemes (32 nm)",
    );
    let chips = scale.sim_chips;
    let pop = ChipPopulation::generate(
        TechNode::N32,
        VariationCorner::Severe.params(),
        chips,
        20_245,
    );
    let eval = Evaluator::new(scale.eval_config(TechNode::N32));
    let ideal = eval.run_ideal(4);

    let schemes = [
        ("no-refresh/LRU", Scheme::no_refresh_lru()),
        ("partial-refresh/DSP", Scheme::partial_refresh_dsp()),
        ("RSP-FIFO", Scheme::rsp_fifo()),
    ];

    let chip_refs: Vec<&ChipModel> = pop.chips().iter().collect();
    let scheme_list: Vec<Scheme> = schemes.iter().map(|&(_, s)| s).collect();
    let result = evaluate_grid(&eval, &chip_refs, &scheme_list, &ideal);
    for (s, &(label, _)) in schemes.iter().enumerate() {
        result.export_scheme(out.metrics(), s, label);
    }
    out.timing.absorb(&result.report);
    let _ = writeln!(out.text);

    // perf[scheme][chip], power[scheme][chip]
    let perf: Vec<Vec<f64>> = (0..3).map(|s| result.perfs(s)).collect();
    let power: Vec<Vec<f64>> = (0..3).map(|s| result.powers(s)).collect();

    // Sort chips by descending no-refresh performance, as in the figure.
    let mut order: Vec<usize> = (0..chips as usize).collect();
    order.sort_by(|&a, &b| perf[0][b].partial_cmp(&perf[0][a]).expect("finite"));

    let _ = writeln!(
        out.text,
        "{:>5} {:>10} {:>10} {:>10}   {:>10} {:>10} {:>10}",
        "chip", "perf:NR", "perf:PR", "perf:RSP", "pwr:NR", "pwr:PR", "pwr:RSP"
    );
    let step = (order.len() / 20).max(1);
    for (rank, &c) in order.iter().enumerate() {
        if rank % step == 0 || rank == order.len() - 1 {
            let _ = writeln!(
                out.text,
                "{:>5} {:>10.3} {:>10.3} {:>10.3}   {:>10.2} {:>10.2} {:>10.2}",
                rank + 1,
                perf[0][c],
                perf[1][c],
                perf[2][c],
                power[0][c],
                power[1][c],
                power[2][c]
            );
        }
    }

    let _ = writeln!(out.text);
    out.compare(
        "worst-chip perf, no-refresh/LRU",
        min(&perf[0]),
        ">=0.86 (Fig. 9/10)",
    );
    out.compare("worst-chip perf, partial-refresh/DSP", min(&perf[1]), ">=0.97");
    out.compare("worst-chip perf, RSP-FIFO", min(&perf[2]), ">=0.97");
    out.compare(
        "chips losing <1% (RSP-FIFO)",
        frac_above(&perf[2], 0.99),
        "'most chips'",
    );
    out.compare(
        "max power overhead, no-refresh/LRU",
        max(&power[0]) - 1.0,
        "up to ~0.6",
    );
    out.compare("max power overhead, partial/DSP", max(&power[1]) - 1.0, "<0.10");
    out.compare("max power overhead, RSP-FIFO", max(&power[2]) - 1.0, "<0.10");
    out.compare(
        "global-scheme discard fraction (for contrast)",
        pop.global_scheme_discard_fraction(&cachesim::CacheConfig::paper(Scheme::global())),
        "~0.80",
    );
    out
}
