//! The figure/table *stage functions*: the core logic of the headline
//! experiment binaries, callable as a library.
//!
//! Each function here reproduces one figure or table of the paper and
//! returns a [`StageOutput`] — a deterministic text rendering plus a
//! [`obs::RunManifest`] of result metrics, with the fan-out timing kept
//! separately (timing legitimately varies run-to-run and must stay out
//! of anything an artifact cache hashes). Two callers drive them:
//!
//! * the thin binary wrappers in `src/bin/` via
//!   [`crate::cli::figure_main`], which print the text and write the
//!   `results/<name>.json` manifest exactly as the historical binaries
//!   did;
//! * the `pv3t1d` orchestrator (`crates/orchestrator`), which runs them
//!   as DAG stages and content-addresses their outputs.
//!
//! The split rule: everything **seed-deterministic** goes into
//! [`StageOutput::text`] / [`StageOutput::manifest`]; everything
//! **wall-clock** ([`CampaignReport`] banners, speedups) goes into
//! [`StageOutput::timing`].

pub mod fig06b;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod sec21;
pub mod table3;

use crate::{compare_line, metric_slug, RunScale};
use obs::RunManifest;
use std::fmt::Write as _;
use t3cache::campaign::CampaignReport;

/// One stage function's complete output.
#[derive(Debug)]
pub struct StageOutput {
    /// Name, seed, tech node, scheme and *result* metrics of the stage.
    /// Wall clock, worker count and git provenance are stamped by the
    /// caller (they are run properties, not stage results).
    pub manifest: RunManifest,
    /// The deterministic human-readable rendering (figure text).
    pub text: String,
    /// Campaign fan-out timing, kept out of `text` and `manifest`.
    pub timing: CampaignReport,
}

impl StageOutput {
    /// An empty output for the named experiment.
    pub fn new(name: &str) -> Self {
        Self {
            manifest: RunManifest::new(name),
            text: String::new(),
            timing: CampaignReport::empty(),
        }
    }

    /// The stage's result metrics.
    pub fn metrics(&mut self) -> &mut obs::MetricsRegistry {
        &mut self.manifest.metrics
    }

    /// Appends the standard figure banner to the text.
    pub fn banner(&mut self, id: &str, title: &str) {
        let rule = "=".repeat(69);
        let _ = writeln!(self.text, "{rule}\n{id}: {title}\n{rule}");
    }

    /// Appends a `measured vs paper` line and records the measured value
    /// as a `compare.<slug>` gauge (same contract as
    /// [`crate::RunRecorder::compare`]).
    pub fn compare(&mut self, what: &str, measured: f64, paper: &str) {
        let line = compare_line(what, measured, paper);
        let _ = writeln!(self.text, "{line}");
        self.manifest
            .metrics
            .set_gauge(&format!("compare.{}", metric_slug(what)), measured);
    }
}

/// Looks up a stage function by its experiment name — the registry the
/// orchestrator's scenario specs index into.
pub fn stage_fn(name: &str) -> Option<fn(&RunScale) -> StageOutput> {
    Some(match name {
        "fig06b" => fig06b::run,
        "fig09" => fig09::run,
        "fig10" => fig10::run,
        "fig11" => fig11::run,
        "fig12_points" => fig12::points,
        "fig12_surface" => fig12::surface,
        "table3" => table3::run,
        "sec21_stability" => sec21::stability,
        "sec21_redundancy" => sec21::redundancy,
        _ => return None,
    })
}

/// Every registered stage-function name, in stable order.
pub const STAGE_NAMES: [&str; 9] = [
    "fig06b",
    "fig09",
    "fig10",
    "fig11",
    "fig12_points",
    "fig12_surface",
    "table3",
    "sec21_stability",
    "sec21_redundancy",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_resolves_every_name() {
        for name in STAGE_NAMES {
            assert!(stage_fn(name).is_some(), "{name} missing from registry");
        }
        assert!(stage_fn("not_a_stage").is_none());
    }

    #[test]
    fn stage_output_collects_text_and_compare_gauges() {
        let mut out = StageOutput::new("unit");
        out.banner("Figure X", "a title");
        out.compare("mean IPC loss", 0.25, "~0.3");
        assert!(out.text.contains("Figure X: a title"));
        assert!(out.text.contains("measured     0.250"));
        assert_eq!(
            out.manifest.metrics.gauge("compare.mean_ipc_loss"),
            Some(0.25)
        );
    }

    /// The cheapest real stages produce deterministic text + fingerprints.
    #[test]
    fn analytic_stages_are_deterministic() {
        for name in ["sec21_stability", "sec21_redundancy", "fig12_points"] {
            let f = stage_fn(name).unwrap();
            let a = f(&RunScale::QUICK);
            let b = f(&RunScale::QUICK);
            assert_eq!(a.text, b.text, "{name} text must be deterministic");
            assert_eq!(
                a.manifest.deterministic_fingerprint(),
                b.manifest.deterministic_fingerprint(),
                "{name} fingerprint must be deterministic"
            );
            assert!(!a.text.is_empty());
        }
    }
}
