//! Figure 9 stage: normalized performance of the eight line-level
//! retention schemes on the good, median and bad chips under severe
//! variation.
//!
//! Paper shape: LRU-only schemes suffer most on the bad chip (dead-line
//! references); partial refresh buys 1–2 % over no-refresh; full refresh
//! gives some of it back (~1 % blocking penalty); the intrinsic-refresh
//! RSP schemes perform best.

use super::StageOutput;
use crate::RunScale;
use cachesim::Scheme;
use std::fmt::Write as _;
use t3cache::campaign::evaluate_grid;
use t3cache::chip::{ChipGrade, ChipModel, ChipPopulation};
use t3cache::evaluate::Evaluator;
use vlsi::tech::TechNode;
use vlsi::variation::VariationCorner;

/// Runs the Figure 9 scheme comparison at the given scale.
pub fn run(scale: &RunScale) -> StageOutput {
    let mut out = StageOutput::new("fig09");
    out.manifest.seed = Some(20_244);
    out.manifest.tech_node = Some(TechNode::N32.to_string());
    out.banner(
        "Figure 9",
        "retention schemes on good/median/bad chips (severe, 32 nm)",
    );
    let pop = ChipPopulation::generate(
        TechNode::N32,
        VariationCorner::Severe.params(),
        scale.sim_chips.max(40),
        20_244,
    );
    let eval = Evaluator::new(scale.eval_config(TechNode::N32));
    let ideal = eval.run_ideal(4);

    let schemes = Scheme::figure9_schemes();
    // One campaign over the schemes × {good, median, bad} grid.
    let exemplars: Vec<&ChipModel> = [ChipGrade::Good, ChipGrade::Median, ChipGrade::Bad]
        .iter()
        .map(|&g| pop.select(g))
        .collect();
    let grid = evaluate_grid(&eval, &exemplars, &schemes, &ideal);
    let labels: Vec<String> = schemes.iter().map(Scheme::to_string).collect();
    for (s, label) in labels.iter().enumerate() {
        grid.export_scheme(out.metrics(), s, label);
    }
    out.timing.absorb(&grid.report);
    let _ = writeln!(out.text);

    let _ = writeln!(
        out.text,
        "{:<28} {:>8} {:>8} {:>8}",
        "scheme", "good", "median", "bad"
    );
    let mut results = Vec::new();
    for (s, scheme) in schemes.iter().enumerate() {
        let row = grid.perfs(s);
        let _ = writeln!(
            out.text,
            "{:<28} {:>8.3} {:>8.3} {:>8.3}",
            scheme.to_string(),
            row[0],
            row[1],
            row[2]
        );
        for (grade, &perf) in ["good", "median", "bad"].iter().zip(&row) {
            out.metrics()
                .set_gauge(&format!("scheme.{scheme}.perf.{grade}"), perf);
        }
        results.push((scheme.to_string(), row));
    }

    let _ = writeln!(out.text);
    let bad = |name: &str| {
        results
            .iter()
            .find(|(n, _)| n.starts_with(name))
            .map(|(_, r)| r[2])
            .expect("scheme present")
    };
    let dsp_gain = bad("no-refresh/DSP") - bad("no-refresh/LRU");
    let rsp_gain = bad("RSP-FIFO") - bad("no-refresh/LRU");
    out.compare(
        "bad chip: DSP gain over plain LRU (no-refresh)",
        dsp_gain,
        "large, dead-line avoidance",
    );
    out.compare(
        "bad chip: RSP-FIFO vs no-refresh/LRU",
        rsp_gain,
        "RSP best overall",
    );
    let partial_vs_none = results
        .iter()
        .find(|(n, _)| n.starts_with("partial-refresh") && n.ends_with("DSP"))
        .map(|(_, r)| r[1])
        .unwrap()
        - results
            .iter()
            .find(|(n, _)| n == "no-refresh/DSP")
            .map(|(_, r)| r[1])
            .unwrap();
    out.compare(
        "median chip: partial vs no refresh (DSP)",
        partial_vs_none,
        "+0.01..0.02",
    );
    out
}
