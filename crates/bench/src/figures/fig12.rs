//! Figure 12 stages: the µ–σ/µ sensitivity surface and the real
//! design-point annotations on it.
//!
//! Paper shape: σ/µ matters more than µ (dead lines dominate); a sharp
//! performance drop appears beyond σ/µ ≈ 25 %; larger µ helps at fixed
//! σ/µ; the retention-aware schemes dominate no-refresh almost
//! everywhere. The annotations show technology scaling (points 1→2→3),
//! voltage scaling (3 vs 5) and severe variation (4, 6) walking toward
//! the cliff.

use super::StageOutput;
use crate::{metric_slug, RunScale};
use cachesim::Scheme;
use std::fmt::Write as _;
use t3cache::evaluate::Evaluator;
use t3cache::sensitivity::{design_point, SensitivitySweep};
use vlsi::tech::TechNode;
use vlsi::units::Voltage;
use vlsi::variation::VariationCorner;
use workloads::SpecBenchmark;

/// Runs the Figure 12 design-point annotation table at the given scale.
pub fn points(scale: &RunScale) -> StageOutput {
    let mut out = StageOutput::new("fig12_points");
    out.manifest.seed = Some(77);
    let chips = (scale.mc_chips / 10).max(4);
    out.banner(
        "Figure 12 (annotations)",
        "real design points on the retention surface",
    );
    let _ = writeln!(
        out.text,
        "{:<6} {:<26} {:>12} {:>8} {:>10}",
        "point", "design", "mu (cycles)", "s/u", "mu (ns)"
    );
    let rows: [(&str, TechNode, VariationCorner, f64); 6] = [
        ("1", TechNode::N65, VariationCorner::Typical, 1.2),
        ("2", TechNode::N45, VariationCorner::Typical, 1.1),
        ("3", TechNode::N32, VariationCorner::Typical, 1.0),
        ("4", TechNode::N32, VariationCorner::Severe, 1.0),
        ("5", TechNode::N32, VariationCorner::Typical, 0.9),
        ("6", TechNode::N32, VariationCorner::Severe, 0.9),
    ];
    for (pt, node, corner, vdd) in rows {
        let (mu, cv) = design_point(node, &corner.params(), Voltage::new(vdd), chips, 77);
        out.metrics()
            .set_gauge(&format!("point.{pt}.mu_cycles"), mu as f64);
        out.metrics()
            .set_gauge(&format!("point.{pt}.sigma_over_mu"), cv);
        let _ = writeln!(
            out.text,
            "{:<6} {:<26} {:>12} {:>7.1}% {:>10.0}",
            pt,
            format!("{node} {corner} @{vdd:.1}V"),
            mu,
            cv * 100.0,
            mu as f64 * node.clock_period().ns()
        );
    }
    let _ = writeln!(out.text);
    let _ = writeln!(
        out.text,
        "reading the surface: scaling (1→2→3) and voltage (3→5) shrink µ;"
    );
    let _ = writeln!(
        out.text,
        "severe variation (4, 6) widens s/u toward the dead-line cliff —"
    );
    let _ = writeln!(
        out.text,
        "point 6 is the corner the paper warns needs innovation at every layer."
    );
    out
}

/// Runs the Figure 12 µ–σ/µ performance-surface sweep at the given scale.
pub fn surface(scale: &RunScale) -> StageOutput {
    let mut out = StageOutput::new("fig12_surface");
    out.manifest.tech_node = Some(TechNode::N32.to_string());
    out.banner(
        "Figure 12",
        "performance vs retention-time mean and variation (three schemes)",
    );

    // Use a 4-benchmark subset to keep the 56-point grid tractable; the
    // subset spans the memory-intensity range.
    let mut cfg = scale.eval_config(TechNode::N32);
    cfg.benchmarks = vec![
        SpecBenchmark::Gzip,
        SpecBenchmark::Gcc,
        SpecBenchmark::Mcf,
        SpecBenchmark::Mesa,
    ];
    cfg.instructions = (cfg.instructions / 2).max(20_000);
    cfg.warmup = (cfg.warmup / 2).max(10_000);
    let eval = Evaluator::new(cfg);
    let ideal = eval.run_ideal(4);

    let mut sweep = SensitivitySweep::paper_grid();
    if scale.sim_chips < 40 {
        sweep = SensitivitySweep {
            mus: vec![2_000, 10_000, 18_000, 30_000],
            ratios: vec![0.05, 0.15, 0.25, 0.35],
            chips_per_point: 1,
            ..sweep
        };
    }

    let schemes = [
        ("no-refresh/LRU", Scheme::no_refresh_lru()),
        (
            "partial-refresh/DSP (dead-line sensitive)",
            Scheme::partial_refresh_dsp(),
        ),
        ("RSP-FIFO (retention sensitive)", Scheme::rsp_fifo()),
    ];

    let mut cliff = (0.0f64, 0.0f64); // no-refresh perf at σ/µ=0.25 vs 0.35, low µ
    let mut aware_vs_naive = 0.0;
    for (si, (name, scheme)) in schemes.iter().enumerate() {
        let _ = writeln!(out.text);
        let _ = writeln!(out.text, "{name}:");
        // Each scheme's µ–σ/µ grid fans out as one campaign of
        // independent grid-point units.
        let (pts, report) = sweep.run_timed(&eval, *scheme, &ideal);
        out.timing.absorb(&report);
        let scheme_slug = metric_slug(name);
        for p in &pts {
            out.metrics().set_gauge(
                &format!(
                    "surface.{scheme_slug}.mu{}.r{:02.0}",
                    p.mu_cycles,
                    p.sigma_over_mu * 100.0
                ),
                p.performance,
            );
        }
        let _ = write!(out.text, "{:>10}", "mu\\s/mu");
        for r in &sweep.ratios {
            let _ = write!(out.text, "{:>8.0}%", r * 100.0);
        }
        let _ = writeln!(out.text);
        for (i, &mu) in sweep.mus.iter().enumerate() {
            let _ = write!(out.text, "{mu:>10}");
            for j in 0..sweep.ratios.len() {
                let p = &pts[i * sweep.ratios.len() + j];
                let _ = write!(out.text, "{:>9.3}", p.performance);
            }
            let _ = writeln!(out.text);
        }
        // Bookkeeping for the headline comparisons.
        let find = |mu: u64, ratio: f64| {
            pts.iter()
                .find(|p| p.mu_cycles == mu && (p.sigma_over_mu - ratio).abs() < 1e-9)
                .map(|p| p.performance)
        };
        let low_mu = sweep.mus[0];
        if si == 0 {
            if let (Some(a), Some(b)) = (find(low_mu, 0.25), find(low_mu, 0.35)) {
                cliff = (a, b);
            }
            aware_vs_naive -= find(low_mu, 0.35).unwrap_or(0.0);
        }
        if si == 1 {
            aware_vs_naive += find(low_mu, 0.35).unwrap_or(0.0);
        }
    }

    let _ = writeln!(out.text);
    out.compare(
        "no-refresh/LRU drop from s/u=25% to 35% (low mu)",
        cliff.0 - cliff.1,
        "sudden drop past 25% (Fig. 12, dead lines)",
    );
    out.compare(
        "retention-aware advantage over no-refresh (35%, low mu)",
        aware_vs_naive,
        "positive nearly everywhere",
    );
    out
}
