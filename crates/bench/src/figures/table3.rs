//! Table 3 stage: detailed simulation data for the three cache designs at
//! each technology node (plus the Table 2 machine configuration header).
//!
//! Paper anchors at 32 nm: ideal 6T 208 ps / 4.17 BIPS / 2.78 mW mean
//! dyn / 20.75 mW full dyn / 78.2 mW leakage; median 1X 6T 251 ps /
//! 3.50 BIPS; median 3T1D 1900 ns retention / 4.14 BIPS / 24.4 mW
//! leakage; ≈64 % total cache power saving and ≈one technology generation
//! of performance recovered.

use super::StageOutput;
use crate::{metric_slug, RunScale};
use std::fmt::Write as _;
use t3cache::campaign::map_indexed;
use t3cache::evaluate::Evaluator;
use t3cache::table3::{cache_power_saving, table3_rows};
use uarch::MachineConfig;
use vlsi::tech::TechNode;

/// Runs the Table 3 cross-node study at the given scale.
pub fn run(scale: &RunScale) -> StageOutput {
    let mut out = StageOutput::new("table3");
    out.manifest.seed = Some(20_247);
    out.banner("Table 3", "cache designs across technology nodes");

    let m = MachineConfig::TABLE2;
    let _ = writeln!(
        out.text,
        "machine (Table 2): {}-wide OoO, ROB {}, IQ {}/{} (INT/FP), LQ/SQ {}/{}, {} INT + {} FP units, 21264 tournament predictor",
        m.width, m.rob_entries, m.int_iq_entries, m.fp_iq_entries, m.load_queue, m.store_queue,
        m.int_units, m.fp_units
    );
    let _ = writeln!(out.text);

    // One campaign unit per technology node (each node's Monte-Carlo
    // population and simulations are independent).
    let nodes = TechNode::ALL;
    let (per_node, report) = map_indexed(nodes.len(), |i| {
        let node = nodes[i];
        let eval = Evaluator::new(scale.eval_config(node));
        table3_rows(node, &eval, scale.mc_chips.min(80), 20_247)
    });
    out.timing.absorb(&report);

    let mut saving_32 = 0.0;
    let mut bips = (0.0, 0.0, 0.0); // (ideal32, 6t32, 3t32)
    for (node, rows) in nodes.iter().copied().zip(&per_node) {
        let _ = writeln!(out.text, "--- {node} ---");
        let _ = writeln!(
            out.text,
            "{:<24} {:>12} {:>12} {:>10} {:>12} {:>12} {:>12}",
            "design", "access", "retention", "BIPS", "mean dyn", "full dyn", "leakage"
        );
        for r in rows.iter() {
            let prefix = format!("node.{node}.{}", metric_slug(&r.design.to_string()));
            out.metrics()
                .set_gauge(&format!("{prefix}.access_ps"), r.access_time.ps());
            out.metrics().set_gauge(&format!("{prefix}.bips"), r.bips);
            out.metrics()
                .set_gauge(&format!("{prefix}.leakage_mw"), r.leakage.mw());
            if let Some(t) = r.retention {
                out.metrics()
                    .set_gauge(&format!("{prefix}.retention_ns"), t.ns());
            }
            let _ = writeln!(
                out.text,
                "{:<24} {:>10.0}ps {:>12} {:>10.2} {:>10.2}mW {:>10.2}mW {:>10.2}mW",
                r.design.to_string(),
                r.access_time.ps(),
                r.retention
                    .map(|t| format!("{:.0}ns", t.ns()))
                    .unwrap_or_else(|| "-".into()),
                r.bips,
                r.mean_dynamic.mw(),
                r.full_dynamic.mw(),
                r.leakage.mw()
            );
        }
        let saving = cache_power_saving(rows);
        out.metrics()
            .set_gauge(&format!("node.{node}.cache_power_saving"), saving);
        let _ = writeln!(
            out.text,
            "total cache power saving (3T1D vs ideal 6T): {:.0}%",
            saving * 100.0
        );
        let _ = writeln!(out.text);
        if node == TechNode::N32 {
            saving_32 = saving;
            bips = (rows[0].bips, rows[1].bips, rows[2].bips);
        }
    }

    out.compare(
        "32nm 3T1D / ideal BIPS ratio",
        bips.2 / bips.0,
        "4.14/4.17 = 0.993",
    );
    out.compare(
        "32nm 1X 6T / ideal BIPS ratio",
        bips.1 / bips.0,
        "3.50/4.17 = 0.839",
    );
    out.compare("32nm total cache power saving", saving_32, "~0.64 across nodes");
    let _ = writeln!(
        out.text,
        "\nnote: absolute BIPS differ from the paper (synthetic workloads run at\n\
         HM IPC ~0.8 vs sim-alpha's ~0.97); ratios are the reproduction target."
    );
    out
}
