//! Shared command-line parsing for every figure/table binary.
//!
//! Before this module each binary re-read `std::env::args()` on its own
//! (once for `--quick`, once for `--json`, once more inside the
//! recorder), so flag handling was copy-pasted and drifted. Now argv is
//! parsed exactly once into a [`BenchArgs`], and everything downstream —
//! [`RunScale`], [`RunRecorder`], the [`figure_main`] driver — derives
//! from that value.
//!
//! Flags understood by every binary:
//!
//! * `--quick` (or env `PV3T1D_QUICK=1`) — reduced smoke-run scale;
//! * `--json <path>` / `--json=<path>` — run-manifest destination
//!   (default `results/<name>.json`).
//!
//! Unknown arguments are preserved in [`BenchArgs::extra`] for the few
//! binaries with positional parameters (e.g. `calib_workloads`).

use crate::{RunRecorder, RunScale};
use std::path::PathBuf;

/// The parsed command line shared by all bench binaries.
#[derive(Debug, Clone, Default)]
pub struct BenchArgs {
    /// `--quick` flag or `PV3T1D_QUICK=1` environment.
    pub quick: bool,
    /// `--json <path>` manifest destination, when given.
    pub json_path: Option<PathBuf>,
    /// Arguments not consumed by the shared flags, in order.
    pub extra: Vec<String>,
}

impl BenchArgs {
    /// Parses the process's argv (plus the `PV3T1D_QUICK` environment
    /// fallback). The one place in the workspace that reads bench argv.
    pub fn parse() -> Self {
        let mut args = Self::parse_from(std::env::args().skip(1));
        args.quick = args.quick
            || std::env::var("PV3T1D_QUICK")
                .map(|v| v == "1")
                .unwrap_or(false);
        args
    }

    /// Parses an explicit argument list (no environment consulted) —
    /// what tests use.
    pub fn parse_from(args: impl Iterator<Item = String>) -> Self {
        let mut out = Self::default();
        let mut args = args.peekable();
        while let Some(a) = args.next() {
            if a == "--quick" {
                out.quick = true;
            } else if a == "--json" {
                out.json_path = args.next().map(PathBuf::from);
            } else if let Some(p) = a.strip_prefix("--json=") {
                out.json_path = Some(PathBuf::from(p));
            } else {
                out.extra.push(a);
            }
        }
        out
    }

    /// The run scale these arguments select.
    pub fn scale(&self) -> RunScale {
        if self.quick {
            RunScale::QUICK
        } else {
            RunScale::FULL
        }
    }

    /// A manifest recorder for `name` honoring `--json` (default
    /// `results/<name>.json`).
    pub fn recorder(&self, name: &str) -> RunRecorder {
        let path = self
            .json_path
            .clone()
            .unwrap_or_else(|| PathBuf::from(format!("results/{name}.json")));
        RunRecorder::new(name, path, self.quick)
    }
}

/// The whole `main` of a figure binary whose core logic lives in
/// [`crate::figures`]: parse argv once, run the stage function at the
/// selected scale, print its text followed by the campaign banner, fold
/// its manifest into the recorder (which adds worker/quick/git
/// provenance plus the fan-out timing), and write the run manifest.
pub fn figure_main(name: &str, run: impl FnOnce(&RunScale) -> crate::figures::StageOutput) {
    let args = BenchArgs::parse();
    let scale = args.scale();
    let mut rec = args.recorder(name);
    let stage = run(&scale);
    print!("{}", stage.text);
    if stage.timing.units > 0 {
        println!("{}", stage.timing.banner_line());
    }
    rec.manifest.seed = stage.manifest.seed;
    rec.manifest.tech_node = stage.manifest.tech_node.clone();
    rec.manifest.scheme = stage.manifest.scheme.clone();
    rec.manifest.metrics.merge(&stage.manifest.metrics);
    stage.timing.export(rec.metrics());
    rec.finish();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> std::vec::IntoIter<String> {
        args.iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn parses_shared_flags_and_keeps_extras() {
        let a = BenchArgs::parse_from(argv(&["--quick", "300000", "--json", "out.json"]));
        assert!(a.quick);
        assert_eq!(a.json_path.as_deref(), Some(std::path::Path::new("out.json")));
        assert_eq!(a.extra, vec!["300000".to_string()]);

        let b = BenchArgs::parse_from(argv(&["--json=x/y.json"]));
        assert!(!b.quick);
        assert_eq!(b.json_path.as_deref(), Some(std::path::Path::new("x/y.json")));
        assert!(b.extra.is_empty());
    }

    #[test]
    fn scale_tracks_quick_flag() {
        assert_eq!(
            BenchArgs::parse_from(argv(&["--quick"])).scale().mc_chips,
            RunScale::QUICK.mc_chips
        );
        assert_eq!(
            BenchArgs::parse_from(argv(&[])).scale().mc_chips,
            RunScale::FULL.mc_chips
        );
    }

    #[test]
    fn recorder_defaults_to_results_dir() {
        let a = BenchArgs::parse_from(argv(&[]));
        let rec = a.recorder("figX");
        assert_eq!(rec.manifest.name, "figX");
        assert!(!rec.manifest.quick);
    }
}
