//! Figure 7: cache leakage-power distributions under typical variation,
//! normalized to the golden (no-variation) 6T design.
//!
//! Paper shape: >50 % of 1X-6T chips exceed 1.5× golden leakage with a
//! tail past 10×; only ≈11 % of 3T1D chips exceed the golden 6T at all,
//! and none pass ≈4×.

use bench_harness::{bar, banner};
use vlsi::cell6t::CellSize;
use vlsi::leakage::golden_cache_leakage_6t;
use vlsi::montecarlo::ChipFactory;
use vlsi::tech::TechNode;
use vlsi::variation::VariationCorner;

fn main() {
    let args = bench_harness::cli::BenchArgs::parse();
    let scale = args.scale();
    let mut rec = args.recorder("fig07");
    rec.manifest.seed = Some(20_242);
    rec.manifest.tech_node = Some(TechNode::N32.to_string());
    banner(
        "Figure 7",
        "cache leakage distributions, typical variation (32 nm), normalized to golden 6T",
    );
    let factory = ChipFactory::new(TechNode::N32, VariationCorner::Typical.params(), 20_242);
    let golden = golden_cache_leakage_6t(TechNode::N32, factory.layout().total_cells());

    // The paper's non-uniform bins.
    let edges = [0.0, 0.375, 0.75, 1.25, 1.75, 2.5, 3.5, 5.0, 7.0, 9.0, 11.0, f64::INFINITY];
    let labels = [
        "0.25X", "0.5X", "1X", "1.5X", "2X", "3X", "4X", "6X", "8X", "10X", "12X+",
    ];
    let mut c6 = [0u32; 11];
    let mut c3 = [0u32; 11];
    let mut over15_6t = 0u32;
    let mut over10_6t = 0u32;
    let mut over1_3t = 0u32;
    let mut max3 = 0.0f64;
    for i in 0..scale.mc_chips {
        let chip = factory.chip(i);
        let r6 = chip.leakage_6t(CellSize::X1).value() / golden.value();
        let r3 = chip.leakage_3t1d().value() / golden.value();
        for (k, w) in edges.windows(2).enumerate() {
            if r6 >= w[0] && r6 < w[1] {
                c6[k] += 1;
            }
            if r3 >= w[0] && r3 < w[1] {
                c3[k] += 1;
            }
        }
        if r6 > 1.5 {
            over15_6t += 1;
        }
        if r6 > 10.0 {
            over10_6t += 1;
        }
        if r3 > 1.0 {
            over1_3t += 1;
        }
        max3 = max3.max(r3);
    }
    let n = scale.mc_chips as f64;

    println!("{:>8} {:>9} {:<26} {:>9} {:<26}", "leakage", "1X 6T", "", "3T1D", "");
    for k in 0..11 {
        rec.metrics()
            .inc(&format!("leakage.six_t.bin_{}", labels[k].to_lowercase()), c6[k] as u64);
        rec.metrics()
            .inc(&format!("leakage.t3.bin_{}", labels[k].to_lowercase()), c3[k] as u64);
        println!(
            "{:>8} {:>9.3} {:<26} {:>9.3} {:<26}",
            labels[k],
            c6[k] as f64 / n,
            bar(c6[k] as f64 / n / 0.45, 26),
            c3[k] as f64 / n,
            bar(c3[k] as f64 / n / 0.45, 26)
        );
    }
    println!();
    rec.compare("1X 6T chips above 1.5x golden", over15_6t as f64 / n, ">0.5");
    rec.compare("1X 6T chips above 10x golden", over10_6t as f64 / n, "'some chips' (>0)");
    rec.compare("3T1D chips above golden 6T", over1_3t as f64 / n, "~0.11");
    rec.compare("3T1D maximum ratio", max3, "<4x");
    rec.finish();
}
