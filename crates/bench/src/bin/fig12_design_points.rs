//! Figure 12's design-point annotations: where real (node, voltage,
//! variation) combinations land on the µ–σ/µ retention surface.
//!
//! Paper narrative: points 1→2→3 show technology scaling shrinking µ;
//! point 3 vs 5 shows voltage scaling shrinking it further; point 4 (32 nm
//! severe) and point 6 (worst case) push σ/µ toward the cliff.

use bench_harness::{banner, RunRecorder, RunScale};
use t3cache::sensitivity::design_point;
use vlsi::tech::TechNode;
use vlsi::units::Voltage;
use vlsi::variation::VariationCorner;

fn main() {
    let scale = RunScale::detect();
    let mut rec = RunRecorder::from_args("fig12_points");
    rec.manifest.seed = Some(77);
    let chips = (scale.mc_chips / 10).max(4);
    banner(
        "Figure 12 (annotations)",
        "real design points on the retention surface",
    );
    println!(
        "{:<6} {:<26} {:>12} {:>8} {:>10}",
        "point", "design", "mu (cycles)", "s/u", "mu (ns)"
    );
    let rows: [(&str, TechNode, VariationCorner, f64); 6] = [
        ("1", TechNode::N65, VariationCorner::Typical, 1.2),
        ("2", TechNode::N45, VariationCorner::Typical, 1.1),
        ("3", TechNode::N32, VariationCorner::Typical, 1.0),
        ("4", TechNode::N32, VariationCorner::Severe, 1.0),
        ("5", TechNode::N32, VariationCorner::Typical, 0.9),
        ("6", TechNode::N32, VariationCorner::Severe, 0.9),
    ];
    for (pt, node, corner, vdd) in rows {
        let (mu, cv) = design_point(node, &corner.params(), Voltage::new(vdd), chips, 77);
        rec.metrics().set_gauge(&format!("point.{pt}.mu_cycles"), mu as f64);
        rec.metrics().set_gauge(&format!("point.{pt}.sigma_over_mu"), cv);
        println!(
            "{:<6} {:<26} {:>12} {:>7.1}% {:>10.0}",
            pt,
            format!("{node} {corner} @{vdd:.1}V"),
            mu,
            cv * 100.0,
            mu as f64 * node.clock_period().ns()
        );
    }
    println!();
    println!("reading the surface: scaling (1→2→3) and voltage (3→5) shrink µ;");
    println!("severe variation (4, 6) widens s/u toward the dead-line cliff —");
    println!("point 6 is the corner the paper warns needs innovation at every layer.");
    rec.finish();
}
