//! Figure 4: 3T1D cell access time vs time elapsed since the last write,
//! for nominal, weak (leaky) and strong cells, against the 6T reference.
//!
//! Paper shape: access time rises as the stored charge decays, crossing
//! the 6T array access time at the cell's *retention time* — ≈5.8–6 µs for
//! a nominal 32 nm cell, ≈4 µs for a weak cell, longer for a strong cell.

use bench_harness::banner;
use vlsi::cell3t1d::{access_time, retention_time};
use vlsi::tech::TechNode;
use vlsi::units::{Time, Voltage};
use vlsi::variation::DeviceDeviation;

fn main() {
    let mut rec = bench_harness::cli::BenchArgs::parse().recorder("fig04");
    banner(
        "Figure 4",
        "3T1D access time vs time after write (32 nm)",
    );
    let node = TechNode::N32;
    rec.manifest.tech_node = Some(node.to_string());
    let nominal = DeviceDeviation::NOMINAL;
    let weak_t1 = DeviceDeviation {
        dl_frac: 0.0,
        dvth_random: Voltage::from_mv(-150.0), // leaky storage corner
    };
    let strong_t1 = DeviceDeviation {
        dl_frac: 0.02,
        dvth_random: Voltage::from_mv(40.0), // tight storage corner
    };

    let t6 = node.sram_access_nominal();
    println!("6T array access time: {:.0} ps (horizontal reference)", t6.ps());
    println!();
    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "elapsed", "nominal", "weak cell", "strong cell"
    );
    for us in [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 5.8, 6.5, 7.0, 8.0] {
        let t = Time::from_us(us);
        let row = |dev_t1: DeviceDeviation| {
            let a = access_time(node, dev_t1, DeviceDeviation::NOMINAL, t);
            if a >= Time::from_us(0.9) {
                "   dead".to_string()
            } else {
                format!("{:>8.0} ps", a.ps())
            }
        };
        println!(
            "{:>8.1}us {:>12} {:>12} {:>12}",
            us,
            row(nominal),
            row(weak_t1),
            row(strong_t1)
        );
    }

    println!();
    let ret = |d: DeviceDeviation| retention_time(node, d, DeviceDeviation::NOMINAL).us();
    rec.compare("nominal cell retention (us)", ret(nominal), "~5.8-6.0 us");
    rec.compare("weak cell retention (us)", ret(weak_t1), "~4 us");
    rec.compare("strong cell retention (us)", ret(strong_t1), "> nominal");
    let fresh = access_time(node, nominal, DeviceDeviation::NOMINAL, Time::ZERO);
    rec.compare(
        "fresh 3T1D access / 6T access",
        fresh.ps() / t6.ps(),
        "<= 1.0 (matches 6T speed when fresh)",
    );
    rec.metrics().set_gauge("access.six_t_ps", t6.ps());
    rec.metrics().set_gauge("access.fresh_3t1d_ps", fresh.ps());
    rec.finish();
}
