//! §4.3.1's road not taken: word-level refresh, quantified.
//!
//! The paper rejects word-granularity refresh for "excessive hardware
//! overheads" without numbers. This ablation computes both sides for
//! sampled chips: refresh power/bandwidth saved by refreshing each 64-bit
//! word at its own retention, versus the 9× line-counter storage it costs.

use bench_harness::{banner, compare};
use cachesim::CounterSpec;
use t3cache::wordlevel::{line_level_demand, word_level_demand};
use vlsi::montecarlo::ChipFactory;
use vlsi::tech::TechNode;
use vlsi::variation::VariationCorner;

fn main() {
    let scale = bench_harness::cli::BenchArgs::parse().scale();
    banner(
        "Ablation: word-level refresh",
        "refresh demand at line vs word granularity (full refresh)",
    );
    // A counter wide enough that neither granularity clamps (6-bit,
    // 1024-cycle step spans 64K cycles ≈ 15 µs at 4.3 GHz); the 3-bit
    // default would saturate both and hide the comparison entirely.
    let counter = CounterSpec {
        step_cycles: 1024,
        bits: 6,
    };
    println!(
        "{:<9} {:<8} {:>14} {:>14} {:>12} {:>12} {:>10}",
        "corner", "level", "refresh/us", "port cyc/us", "power (uW)", "counters", "dead units"
    );
    for corner in [VariationCorner::Typical, VariationCorner::Severe] {
        let factory = ChipFactory::new(TechNode::N32, corner.params(), 20_249);
        let chips = scale.sim_chips.min(12);
        let mut acc = [[0.0f64; 5]; 2];
        for i in 0..chips {
            let map = factory.chip(i).word_retention_map(8);
            for (k, d) in [
                line_level_demand(&map, &counter, TechNode::N32),
                word_level_demand(&map, &counter, TechNode::N32),
            ]
            .into_iter()
            .enumerate()
            {
                acc[k][0] += d.refreshes_per_us;
                acc[k][1] += d.port_cycles_per_us;
                acc[k][2] += d.power.value() * 1e6;
                acc[k][3] += d.counter_bits as f64;
                acc[k][4] += d.dead_units as f64;
            }
        }
        for (k, name) in ["line", "word"].iter().enumerate() {
            println!(
                "{:<9} {:<8} {:>14.2} {:>14.2} {:>12.1} {:>12.0} {:>10.1}",
                corner.to_string(),
                name,
                acc[k][0] / chips as f64,
                acc[k][1] / chips as f64,
                acc[k][2] / chips as f64,
                acc[k][3] / chips as f64,
                acc[k][4] / chips as f64
            );
        }
        if corner == VariationCorner::Typical {
            compare(
                "typical: refresh power saved by word granularity",
                1.0 - acc[1][2] / acc[0][2],
                "substantial (unquantified in the paper)",
            );
            compare(
                "typical: counter storage multiplier",
                acc[1][3] / acc[0][3],
                "9x — the 'excessive hardware overhead'",
            );
        }
    }
    println!("\nverdict: the savings are MODEST, not transformative — worst-cell");
    println!("statistics are logarithmic, so a 64-cell word retains only ~1.3-1.6x");
    println!("longer than its 536-cell line, while counters cost 9x the bits (and");
    println!("with the paper's own 3-bit counters the advantage clamps to ~zero).");
    println!("The paper's decision to stop at line granularity is quantitatively sound.");
}
