//! §4.2's architectural claim, isolated: "out-of-order processors can
//! tolerate large retention time variations".
//!
//! Runs the same 3T1D chips under the same schemes on the Table 2 machine
//! with out-of-order vs strictly in-order issue, and compares how much
//! performance each machine loses to retention effects (expiry misses,
//! refresh port stealing, dead-line replays). Each machine is normalized
//! against its *own* ideal-6T baseline, so the comparison isolates
//! retention tolerance from raw ILP.

use bench_harness::{banner, compare};
use cachesim::Scheme;
use t3cache::chip::{ChipGrade, ChipPopulation};
use t3cache::evaluate::{EvalConfig, Evaluator};
use uarch::MachineConfig;
use vlsi::tech::TechNode;
use vlsi::variation::VariationCorner;
use workloads::SpecBenchmark;

fn main() {
    let scale = bench_harness::cli::BenchArgs::parse().scale();
    banner(
        "Ablation: out-of-order tolerance",
        "retention losses on OoO vs in-order issue (severe, 32 nm)",
    );
    let pop = ChipPopulation::generate(
        TechNode::N32,
        VariationCorner::Severe.params(),
        scale.sim_chips.max(40),
        20_250,
    );

    let base_cfg = EvalConfig {
        benchmarks: vec![
            SpecBenchmark::Gzip,
            SpecBenchmark::Gcc,
            SpecBenchmark::Mcf,
            SpecBenchmark::Mesa,
        ],
        instructions: scale.instructions,
        warmup: scale.warmup,
        ..EvalConfig::default()
    };

    println!(
        "{:<10} {:<22} {:>12} {:>12} {:>14}",
        "chip", "scheme", "OoO perf", "in-order", "extra loss (IO)"
    );
    let mut worst_gap = 0.0f64;
    for grade in [ChipGrade::Median, ChipGrade::Bad] {
        let chip = pop.select(grade);
        for (name, scheme) in [
            ("no-refresh/LRU", Scheme::no_refresh_lru()),
            ("partial-refresh/DSP", Scheme::partial_refresh_dsp()),
            ("RSP-FIFO", Scheme::rsp_fifo()),
        ] {
            let mut row = Vec::new();
            for machine in [MachineConfig::TABLE2, MachineConfig::table2_in_order()] {
                let eval = Evaluator::new(EvalConfig {
                    machine,
                    ..base_cfg.clone()
                });
                let ideal = eval.run_ideal(4);
                let suite = eval.run_scheme(chip.retention_profile(), scheme, 4);
                row.push(suite.normalized_performance(&ideal, 1.0));
            }
            let gap = row[0] - row[1];
            worst_gap = worst_gap.max(gap);
            println!(
                "{:<10} {:<22} {:>12.3} {:>12.3} {:>14.3}",
                grade.to_string(),
                name,
                row[0],
                row[1],
                gap
            );
        }
    }
    println!();
    compare(
        "largest extra retention loss on the in-order machine",
        worst_gap,
        ">0: OoO absorbs retention effects (the paper's §4.2 insight)",
    );
    println!("\neach column is normalized against that machine's own ideal-6T run,");
    println!("so the gap measures *retention tolerance*, not raw ILP.");
}
