//! §2.1 extended: manufacturing yield of an unstable 6T cache under
//! classical rescue mechanisms (spare lines, SECDED ECC, both), versus the
//! 3T1D design's architectural tolerance.
//!
//! Paper claim quantified: "line-level redundancy is straightforward to
//! implement, but is ineffective" — at the 32 nm 0.4 % flip rate not even
//! ECC + spares ships the cache, while every 3T1D chip ships under the
//! line-level retention schemes.

use bench_harness::{banner, compare};
use t3cache::rescue::rescue_report;
use vlsi::tech::TechNode;
use vlsi::variation::VariationCorner;

fn main() {
    banner(
        "Section 2.1 (extended)",
        "6T rescue-mechanism yield vs bit-flip rates",
    );
    println!(
        "{:<8} {:<9} {:>10} {:>10} {:>12} {:>12} {:>14}",
        "node", "corner", "bit flip", "no rescue", "16 spares", "SECDED/64b", "SECDED+spares"
    );
    for node in TechNode::ALL {
        for corner in [VariationCorner::Typical, VariationCorner::Severe] {
            let r = rescue_report(node, &corner.params());
            println!(
                "{:<8} {:<9} {:>9.4}% {:>9.1}% {:>11.1}% {:>11.1}% {:>13.1}%",
                node.to_string(),
                corner.to_string(),
                r.bit_flip * 100.0,
                r.yield_none * 100.0,
                r.yield_spares * 100.0,
                r.yield_secded * 100.0,
                r.yield_both * 100.0
            );
        }
    }
    println!();
    let r32 = rescue_report(TechNode::N32, &VariationCorner::Typical.params());
    compare("32nm typical bit-flip rate (%)", r32.bit_flip * 100.0, "~0.4%");
    compare(
        "32nm yield with ECC + spares",
        r32.yield_both,
        "'ineffective' (~0)",
    );
    println!("\n3T1D contrast: stability is not a failure mode; under the line-level");
    println!("retention schemes of Section 4 every fabricated chip ships (Fig. 10),");
    println!("with dead lines absorbed by DSP/RSP placement instead of scrapped die.");
}
