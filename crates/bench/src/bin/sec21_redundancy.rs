//! Thin wrapper: §2.1 extended rescue-mechanism yield table. The core
//! logic lives in [`bench_harness::figures::sec21`] so the `pv3t1d`
//! orchestrator can run it as a DAG stage; this binary keeps the
//! historical standalone CLI (`--quick`, `--json <path>`) and — new with
//! the refactor — gains the run manifest its siblings already had.

fn main() {
    bench_harness::cli::figure_main("sec21_redundancy", bench_harness::figures::sec21::redundancy);
}
