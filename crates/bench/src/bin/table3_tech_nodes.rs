//! Thin wrapper: Table 3 cross-node study. The core logic lives in
//! [`bench_harness::figures::table3`] so the `pv3t1d` orchestrator can
//! run it as a DAG stage; this binary keeps the historical standalone
//! CLI (`--quick`, `--json <path>`).

fn main() {
    bench_harness::cli::figure_main("table3", bench_harness::figures::table3::run);
}
