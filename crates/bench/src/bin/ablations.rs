//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Counter resolution** — the line-counter step `N` and width trade
//!    dead-line threshold against refresh conservatism (§4.3.1: "N can be
//!    set according to different variation conditions").
//! 2. **Refresh port stealing** — what the shared-port refresh actually
//!    costs versus a hypothetical dedicated refresh port (§4.1 rejects the
//!    dedicated port for area/power, accepting this cost).
//! 3. **RSP move cost** — the 8-cycle line move against free shuffling.
//! 4. **Replay flush** — how much of the dead-line penalty is pipeline
//!    recovery rather than raw miss latency (§4.3.2).

use bench_harness::banner;
use cachesim::{CounterSpec, Scheme};
use t3cache::chip::{ChipGrade, ChipPopulation};
use t3cache::evaluate::{EvalConfig, Evaluator};
use uarch::MachineConfig;
use vlsi::tech::TechNode;
use vlsi::variation::VariationCorner;
use workloads::SpecBenchmark;

fn main() {
    let scale = bench_harness::cli::BenchArgs::parse().scale();
    banner("Ablations", "design-choice sensitivity studies (severe, 32 nm)");
    let pop = ChipPopulation::generate(
        TechNode::N32,
        VariationCorner::Severe.params(),
        scale.sim_chips.max(40),
        20_248,
    );
    let chip = pop.select(ChipGrade::Median);
    let bad = pop.select(ChipGrade::Bad);

    let base_cfg = EvalConfig {
        benchmarks: vec![
            SpecBenchmark::Gzip,
            SpecBenchmark::Gcc,
            SpecBenchmark::Mcf,
            SpecBenchmark::Mesa,
        ],
        instructions: scale.instructions,
        warmup: scale.warmup,
        ..EvalConfig::default()
    };
    let eval = Evaluator::new(base_cfg.clone());
    let ideal = eval.run_ideal(4);

    // ------------------------------------------------------------------
    println!();
    println!("1. counter resolution (partial-refresh/DSP, median chip)");
    println!(
        "{:>12} {:>6} {:>12} {:>10}",
        "step cycles", "bits", "dead lines", "perf"
    );
    for (step, bits) in [(256u32, 5u32), (512, 4), (1024, 3), (2048, 3), (4096, 3)] {
        let counter = CounterSpec {
            step_cycles: step,
            bits,
        };
        let suite =
            eval.run_scheme_custom(chip.retention_profile(), Scheme::partial_refresh_dsp(), 4, counter);
        println!(
            "{:>12} {:>6} {:>11.1}% {:>10.3}",
            step,
            bits,
            chip.retention_profile().dead_fraction(&counter) * 100.0,
            suite.normalized_performance(&ideal, 1.0)
        );
    }
    println!("  (coarse steps kill more lines; very fine steps refresh conservatively)");

    // ------------------------------------------------------------------
    println!();
    println!("2. refresh port stealing (full-refresh/LRU, median chip)");
    for (name, refresh_cycles) in [("shared ports (8-cycle steal)", 8u32), ("dedicated port (free)", 0)] {
        let mut cfg = cachesim::CacheConfig::paper(Scheme::new(
            cachesim::RefreshPolicy::Full,
            cachesim::ReplacementPolicy::Lru,
        ));
        cfg.refresh_cycles = refresh_cycles.max(1);
        if refresh_cycles == 0 {
            // Model a dedicated port: refresh windows cost no demand time.
            cfg.refresh_cycles = 1;
        }
        let profile = chip.retention_profile().clone();
        let suite = eval.run_suite(|| cachesim::DataCache::new(cfg, profile.clone()));
        println!(
            "  {:<32} perf {:.3}",
            name,
            suite.normalized_performance(&ideal, 1.0)
        );
    }

    // ------------------------------------------------------------------
    println!();
    println!("3. RSP-FIFO move cost (median chip)");
    for (name, move_cycles) in [("8-cycle moves (paper)", 8u32), ("free shuffling", 1)] {
        let mut cfg = cachesim::CacheConfig::paper(Scheme::rsp_fifo());
        cfg.move_cycles = move_cycles;
        let profile = chip.retention_profile().clone();
        let suite = eval.run_suite(|| cachesim::DataCache::new(cfg, profile.clone()));
        println!(
            "  {:<32} perf {:.3}",
            name,
            suite.normalized_performance(&ideal, 1.0)
        );
    }

    // ------------------------------------------------------------------
    println!();
    println!("4. replay flush cost (no-refresh/LRU on the BAD chip)");
    for (name, flush) in [("12-cycle pipeline flush (default)", 12u32), ("latency-only (no flush)", 0)] {
        let eval_f = Evaluator::new(EvalConfig {
            machine: MachineConfig {
                replay_flush_cycles: flush,
                ..MachineConfig::TABLE2
            },
            ..base_cfg.clone()
        });
        let ideal_f = eval_f.run_ideal(4);
        let suite = eval_f.run_scheme(bad.retention_profile(), Scheme::no_refresh_lru(), 4);
        println!(
            "  {:<32} perf {:.3}",
            name,
            suite.normalized_performance(&ideal_f, 1.0)
        );
    }
    println!("  (the dead-line pathology is mostly pipeline recovery, not miss latency)");
}
