//! Figure 1: percentage of cache references vs cycles since the line was
//! loaded, per benchmark plus the average.
//!
//! Paper shape: most references land within the first 6 K cycles of a
//! line's lifetime (≈90 % on average), with the CDF flattening past ≈10 K.

use bench_harness::banner;
use cachesim::DataCache;
use uarch::sim::simulate_warmed;
use workloads::{SpecBenchmark, SyntheticTrace};

fn main() {
    let args = bench_harness::cli::BenchArgs::parse();
    let scale = args.scale();
    let mut rec = args.recorder("fig01");
    rec.manifest.seed = Some(1);
    banner("Figure 1", "cache reference age CDF (cycles since line load)");

    let marks = [2_048u64, 4_096, 6_144, 10_240, 15_360, 20_480];
    println!(
        "{:<8} {}",
        "bench",
        marks
            .iter()
            .map(|m| format!("{:>8}", format!("<{}k", m / 1024)))
            .collect::<String>()
    );

    let mut avg = vec![0.0f64; marks.len()];
    for bench in SpecBenchmark::ALL {
        let mut trace = SyntheticTrace::new(bench.profile(), 1);
        let mut cache = DataCache::ideal();
        let icache = trace.icache_miss_rate();
        let (_, stats) = simulate_warmed(
            &mut trace,
            &mut cache,
            scale.warmup,
            scale.instructions * 2,
            icache,
        );
        let cdf = stats.hit_age_cdf();
        let at = |cycles: u64| -> f64 {
            cdf.iter()
                .find(|(bound, _)| *bound >= cycles)
                .map(|(_, f)| *f)
                .unwrap_or(1.0)
        };
        let row: Vec<f64> = marks.iter().map(|&m| at(m)).collect();
        stats.export(rec.metrics(), &format!("cache.{bench}"));
        for (&m, &f) in marks.iter().zip(&row) {
            rec.metrics()
                .set_gauge(&format!("cdf.{bench}.under_{}k", m / 1024), f);
        }
        println!(
            "{:<8} {}",
            bench.to_string(),
            row.iter()
                .map(|f| format!("{:>7.1}%", f * 100.0))
                .collect::<String>()
        );
        for (a, r) in avg.iter_mut().zip(&row) {
            *a += r / 8.0;
        }
    }
    println!(
        "{:<8} {}",
        "average",
        avg.iter()
            .map(|f| format!("{:>7.1}%", f * 100.0))
            .collect::<String>()
    );
    println!();
    rec.compare(
        "average fraction of references within 6K cycles",
        avg[2],
        "~0.90 (Fig. 1)",
    );
    rec.compare(
        "average fraction within 20K cycles",
        avg[5],
        "~0.97+ (Fig. 1 tail)",
    );
    rec.finish();
}
