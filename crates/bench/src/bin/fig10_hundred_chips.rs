//! Thin wrapper: Figure 10 hundred-chip study. The core logic lives in
//! [`bench_harness::figures::fig10`] so the `pv3t1d` orchestrator can run
//! it as a DAG stage; this binary keeps the historical standalone CLI
//! (`--quick`, `--json <path>`).

fn main() {
    bench_harness::cli::figure_main("fig10", bench_harness::figures::fig10::run);
}
