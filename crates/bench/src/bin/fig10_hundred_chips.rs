//! Figure 10: performance and dynamic power of 100 severely-varied chips
//! under the three representative line-level schemes.
//!
//! Paper shape: every chip stays functional; RSP-FIFO and
//! partial-refresh/DSP hold performance within ≈3 % (most chips <1 %)
//! with <10 % dynamic-power overhead; no-refresh/LRU loses more and its
//! power overhead reaches ≈60 % on the worst chips (extra L2 traffic).

use bench_harness::{banner, compare, RunScale};
use cachesim::Scheme;
use t3cache::chip::ChipPopulation;
use t3cache::evaluate::Evaluator;
use vlsi::power::MemKind;
use vlsi::tech::TechNode;
use vlsi::variation::VariationCorner;

fn main() {
    let scale = RunScale::detect();
    banner(
        "Figure 10",
        "100 severe-variation chips under three line-level schemes (32 nm)",
    );
    let chips = scale.sim_chips;
    let pop = ChipPopulation::generate(
        TechNode::N32,
        VariationCorner::Severe.params(),
        chips,
        20_245,
    );
    let eval = Evaluator::new(scale.eval_config(TechNode::N32));
    let ideal = eval.run_ideal(4);

    let schemes = [
        ("no-refresh/LRU", Scheme::no_refresh_lru()),
        ("partial-refresh/DSP", Scheme::partial_refresh_dsp()),
        ("RSP-FIFO", Scheme::rsp_fifo()),
    ];

    // perf[scheme][chip], power[scheme][chip]
    let mut perf: Vec<Vec<f64>> = (0..3).map(|_| Vec::with_capacity(chips as usize)).collect();
    let mut power: Vec<Vec<f64>> = (0..3).map(|_| Vec::with_capacity(chips as usize)).collect();
    for chip in pop.chips() {
        for (k, (_, scheme)) in schemes.iter().enumerate() {
            let suite = eval.run_scheme(chip.retention_profile(), *scheme, 4);
            perf[k].push(suite.normalized_performance(&ideal, 1.0));
            power[k].push(suite.normalized_dynamic_power(&ideal, MemKind::Dram3t1d));
        }
    }

    // Sort chips by descending no-refresh performance, as in the figure.
    let mut order: Vec<usize> = (0..chips as usize).collect();
    order.sort_by(|&a, &b| perf[0][b].partial_cmp(&perf[0][a]).expect("finite"));

    println!(
        "{:>5} {:>10} {:>10} {:>10}   {:>10} {:>10} {:>10}",
        "chip", "perf:NR", "perf:PR", "perf:RSP", "pwr:NR", "pwr:PR", "pwr:RSP"
    );
    let step = (order.len() / 20).max(1);
    for (rank, &c) in order.iter().enumerate() {
        if rank % step == 0 || rank == order.len() - 1 {
            println!(
                "{:>5} {:>10.3} {:>10.3} {:>10.3}   {:>10.2} {:>10.2} {:>10.2}",
                rank + 1,
                perf[0][c],
                perf[1][c],
                perf[2][c],
                power[0][c],
                power[1][c],
                power[2][c]
            );
        }
    }

    println!();
    let min = |v: &Vec<f64>| v.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = |v: &Vec<f64>| v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let frac_above = |v: &Vec<f64>, x: f64| v.iter().filter(|p| **p > x).count() as f64 / v.len() as f64;
    compare("worst-chip perf, no-refresh/LRU", min(&perf[0]), ">=0.86 (Fig. 9/10)");
    compare("worst-chip perf, partial-refresh/DSP", min(&perf[1]), ">=0.97");
    compare("worst-chip perf, RSP-FIFO", min(&perf[2]), ">=0.97");
    compare("chips losing <1% (RSP-FIFO)", frac_above(&perf[2], 0.99), "'most chips'");
    compare("max power overhead, no-refresh/LRU", max(&power[0]) - 1.0, "up to ~0.6");
    compare("max power overhead, partial/DSP", max(&power[1]) - 1.0, "<0.10");
    compare("max power overhead, RSP-FIFO", max(&power[2]) - 1.0, "<0.10");
    compare(
        "global-scheme discard fraction (for contrast)",
        pop.global_scheme_discard_fraction(&cachesim::CacheConfig::paper(Scheme::global())),
        "~0.80",
    );
}
