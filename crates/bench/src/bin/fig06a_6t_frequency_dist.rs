//! Figure 6a: distribution of normalized chip frequency (= performance)
//! for 6T caches under typical process variation, 1X and 2X cells.
//!
//! Paper shape: 1X 6T chips lose 10–20 % of frequency; even 2X-sized
//! cells leave ≈20 % of chips ≈3 % slow.

use bench_harness::{bar, banner};
use vlsi::cell6t::CellSize;
use vlsi::montecarlo::ChipFactory;
use vlsi::stats::Histogram;
use vlsi::tech::TechNode;
use vlsi::variation::VariationCorner;

fn main() {
    let args = bench_harness::cli::BenchArgs::parse();
    let scale = args.scale();
    let mut rec = args.recorder("fig06a");
    rec.manifest.seed = Some(20_240);
    rec.manifest.tech_node = Some(TechNode::N32.to_string());
    banner(
        "Figure 6a",
        "6T cache frequency distribution under typical variation (32 nm)",
    );
    let factory = ChipFactory::new(TechNode::N32, VariationCorner::Typical.params(), 20_240);

    let mut h1 = Histogram::new(0.7625, 1.0625, 12); // 0.025-wide bins centered on paper ticks
    let mut h2 = Histogram::new(0.7625, 1.0625, 12);
    let mut sum1 = 0.0;
    let mut sum2 = 0.0;
    let mut slow2 = 0u32;
    for i in 0..scale.mc_chips {
        let chip = factory.chip(i);
        let f1 = chip.frequency_multiplier_6t(CellSize::X1);
        let f2 = chip.frequency_multiplier_6t(CellSize::X2);
        h1.push(f1);
        h2.push(f2);
        sum1 += f1;
        sum2 += f2;
        if f2 < 0.99 {
            slow2 += 1;
        }
    }
    let n = scale.mc_chips as f64;
    for (label, h, sum) in [("x1", &h1, sum1), ("x2", &h2, sum2)] {
        rec.metrics().put_histogram(
            &format!("freq.{label}"),
            obs::FixedHistogram::from_buckets(
                0.7625,
                1.0625,
                h.counts().to_vec(),
                h.underflow(),
                h.overflow(),
                sum,
            ),
        );
    }

    println!("{:>8} {:>10} {:>26} {:>10} {:>26}", "freq", "1X prob", "", "2X prob", "");
    for i in 0..h1.counts().len() {
        let f1 = h1.fractions()[i];
        let f2 = h2.fractions()[i];
        println!(
            "{:>8.3} {:>10.3} {:<26} {:>10.3} {:<26}",
            h1.bin_center(i),
            f1,
            bar(f1 / 0.5, 26),
            f2,
            bar(f2 / 0.5, 26)
        );
    }
    println!();
    rec.compare("mean 1X 6T normalized frequency", sum1 / n, "0.80-0.90 (10-20% loss)");
    rec.compare("mean 2X 6T normalized frequency", sum2 / n, "~1.0");
    rec.compare(
        "fraction of 2X chips below 0.99",
        slow2 as f64 / n,
        "~0.2 (20% of chips ~3% slow)",
    );
    rec.finish();
}
