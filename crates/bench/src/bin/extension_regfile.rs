//! Extension: 3T1D register files.
//!
//! The paper's intro (and its citation of Liang & Brooks, MICRO'06) claims
//! dynamic cells suit register files too. This experiment measures the
//! *operand value ages* the Table 2 pipeline actually produces — the time
//! between a value being written (producer completes) and read (consumer
//! issues) — and compares them against 3T1D retention times.
//!
//! A register value only needs to survive until its last read or until the
//! architectural register is overwritten; an age histogram bounded by a
//! few hundred cycles means a 3T1D register file needs essentially no
//! refresh at all, even on the worst chips.

use bench_harness::{banner, compare};
use cachesim::DataCache;
use t3cache::chip::{ChipGrade, ChipPopulation};
use uarch::sim::simulate_warmed;
use vlsi::tech::TechNode;
use vlsi::variation::VariationCorner;
use workloads::{SpecBenchmark, SyntheticTrace};

fn main() {
    let scale = bench_harness::cli::BenchArgs::parse().scale();
    banner(
        "Extension: 3T1D register files",
        "operand value ages vs retention (Table 2 machine)",
    );

    let mut hist = [0u64; 16];
    for bench in SpecBenchmark::ALL {
        let mut trace = SyntheticTrace::new(bench.profile(), 23);
        let mut cache = DataCache::ideal();
        let icache = trace.icache_miss_rate();
        let (r, _) = simulate_warmed(
            &mut trace,
            &mut cache,
            scale.warmup,
            scale.instructions,
            icache,
        );
        for (h, v) in hist.iter_mut().zip(r.value_age_hist.iter()) {
            *h += v;
        }
    }
    let total: u64 = hist.iter().sum();
    println!("operand value age at consumption (all 8 benchmarks):");
    println!("{:>16} {:>12} {:>10}", "age (cycles)", "reads", "cum %");
    let mut acc = 0u64;
    let mut cum_at_1k = 0.0;
    for (i, &c) in hist.iter().enumerate() {
        acc += c;
        let hi = 1u64 << (i + 1);
        let cum = acc as f64 / total as f64;
        if hi <= 1024 {
            cum_at_1k = cum;
        }
        if c > 0 {
            println!("{:>13} .. {:>12} {:>9.3}%", hi, c, cum * 100.0);
        }
    }

    println!();
    // Worst severe chip's cache retention, as a conservative stand-in for
    // a register file built from the same cells (a register cell is larger
    // and better-margined, so this underestimates its retention).
    let pop = ChipPopulation::generate(
        TechNode::N32,
        VariationCorner::Severe.params(),
        scale.sim_chips.min(40),
        20_252,
    );
    let bad = pop.select(ChipGrade::Bad);
    // "Alive" per the chip's own counter sizing (near-dead lines below one
    // counter step would be remapped, exactly like dead cache lines).
    let step_ns = bad.counter_spec().step_cycles as f64 / 4.3;
    let alive_ns: Vec<f64> = bad
        .retention_times()
        .iter()
        .map(|t| t.ns())
        .filter(|ns| *ns >= step_ns)
        .collect();
    let worst_alive_ns = bench_harness::min(&alive_ns);
    let worst_alive_cycles = worst_alive_ns * 4.3;
    compare(
        "operand reads consumed within 1K cycles",
        cum_at_1k,
        "~all: register lifetimes are tiny",
    );
    compare(
        "worst alive 3T1D retention on the bad chip (cycles)",
        worst_alive_cycles,
        "far above the value lifetimes",
    );
    println!("\na 3T1D register file therefore needs no refresh machinery at all —");
    println!("only dead-entry remapping (a handful of spare physical registers),");
    println!("which the rename stage already knows how to do. This is the");
    println!("register-file result of Liang & Brooks (MICRO'06), recovered here");
    println!("from the cache study's own infrastructure.");
}
