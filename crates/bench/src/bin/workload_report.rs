//! Workload calibration report: measured properties of each synthetic
//! benchmark stream — on the trace itself (mix, stack distances,
//! footprint) and on the Table 2 machine with an ideal cache (IPC, miss
//! rate, mispredicts) — the evidence behind DESIGN.md substitution #2.

use bench_harness::banner;
use cachesim::DataCache;
use uarch::sim::simulate_warmed;
use workloads::{analyze, SpecBenchmark, SyntheticTrace};

fn main() {
    let scale = bench_harness::cli::BenchArgs::parse().scale();
    banner("Workloads", "synthetic SPEC2000 profile calibration report");
    println!(
        "{:<8} {:>6} {:>6} {:>6} {:>8} {:>7} {:>7} {:>7} {:>8} {:>8} {:>8}",
        "bench", "load%", "store%", "br%", "footprnt", "near%", "cold%", "IPC", "missrate", "mispred", "dtlbMPKI"
    );
    for bench in SpecBenchmark::ALL {
        let mut t = SyntheticTrace::new(bench.profile(), 11);
        let s = analyze(&mut t, scale.instructions);

        let mut trace = SyntheticTrace::new(bench.profile(), 11);
        let mut cache = DataCache::ideal();
        let icache = trace.icache_miss_rate();
        let (r, cs) = simulate_warmed(
            &mut trace,
            &mut cache,
            scale.warmup,
            scale.instructions,
            icache,
        );
        println!(
            "{:<8} {:>5.1}% {:>5.1}% {:>5.1}% {:>8} {:>6.1}% {:>6.2}% {:>7.3} {:>7.2}% {:>7.2}% {:>8.2}",
            bench.to_string(),
            s.frac_load * 100.0,
            s.frac_store * 100.0,
            s.frac_branch * 100.0,
            s.footprint_blocks,
            s.near_fraction() * 100.0,
            s.cold_fraction() * 100.0,
            r.ipc(),
            cs.miss_rate() * 100.0,
            r.mispredict_rate() * 100.0,
            r.dtlb_misses as f64 * 1000.0 / r.instructions as f64
        );
    }
    println!("\npublished SPEC2000 reference points (64KB 4-way L1D, 21264-class):");
    println!("  mcf miss ~15-24%, twolf ~5-9%, mesa <1%; IPC: mesa/crafty high, mcf lowest;");
    println!("  INT mispredicts 5-13%, FP 1-8%. See workloads::profile for the targets.");
}
