use cachesim::DataCache;
use uarch::sim::simulate_warmed;
use workloads::{SpecBenchmark, SyntheticTrace};

fn main() {
    let n: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(300_000);
    let mut ipcs = Vec::new();
    for bench in SpecBenchmark::ALL {
        let mut trace = SyntheticTrace::new(bench.profile(), 1);
        let mut cache = DataCache::ideal();
        let icache = trace.icache_miss_rate();
        let (r, stats) = simulate_warmed(&mut trace, &mut cache, n / 2, n, icache);
        let s = &stats;
        let cdf = s.hit_age_cdf();
        let at6k = cdf.get(5).map(|x| x.1).unwrap_or(0.0);
        println!(
            "{:8}: IPC {:.3}  missrate {:.4}  mispred {:.4}  refs/cyc {:.3}  cdf@6k {:.3}  l2miss/l1miss {:.2}",
            bench.to_string(), r.ipc(), s.miss_rate(), r.mispredict_rate(),
            s.accesses() as f64 / r.cycles as f64, at6k,
            s.l2_misses as f64 / s.misses().max(1) as f64
        );
        ipcs.push(r.ipc());
    }
    let hm = ipcs.len() as f64 / ipcs.iter().map(|x| 1.0 / x).sum::<f64>();
    println!("harmonic-mean IPC: {hm:.3}  (target ≈0.97; BIPS@4.3GHz = {:.2})", hm * 4.3);
}
