//! §4.1: the global refresh scheme without process variation — refresh
//! bandwidth and performance cost at nominal retention.
//!
//! Paper anchors at 32 nm: a full refresh pass is 2 K cycles ≈ 476.3 ns;
//! at the ≈6000 ns nominal cache retention that is ≈8 % of cache
//! bandwidth, hidden by port under-utilization for <1 % performance loss.

use bench_harness::{banner, compare};
use cachesim::{DataCache, RetentionProfile, Scheme};
use t3cache::evaluate::Evaluator;
use vlsi::tech::TechNode;

fn main() {
    let scale = bench_harness::cli::BenchArgs::parse().scale();
    banner("Section 4.1", "global refresh without variation (32 nm)");
    let node = TechNode::N32;

    let cfg = cachesim::CacheConfig::paper(Scheme::global());
    let pass = DataCache::global_pass_cycles(&cfg);
    let pass_ns = node.clock_period().ns() * pass as f64;
    let retention_ns = vlsi::calib::nominal_retention(node).ns();
    let ret_cycles = (retention_ns * 1e-9 * node.chip_frequency().value()) as u64;

    compare("refresh pass (cycles)", pass as f64, "2048 (2K)");
    compare("refresh pass (ns)", pass_ns, "476.3 ns");
    compare(
        "refresh share of cache bandwidth",
        pass_ns / retention_ns,
        "~8% (476.3/6000)",
    );

    let eval = Evaluator::new(scale.eval_config(node));
    let ideal = eval.run_ideal(4);
    let profile = RetentionProfile::uniform_cycles(ret_cycles, 1024);
    let suite = eval.run_scheme(&profile, Scheme::global(), 4);
    let perf = suite.normalized_performance(&ideal, 1.0);
    compare("performance vs ideal 6T", perf, ">0.99 (<1% loss)");
    compare(
        "dynamic power vs ideal 6T",
        suite.normalized_dynamic_power(&ideal, vlsi::power::MemKind::Dram3t1d),
        "1.3-2.25x band begins here",
    );
    let blocked: u64 = suite.runs.iter().map(|r| r.cache.blocked_cycles).sum();
    let cycles: u64 = suite.runs.iter().map(|r| r.sim.cycles).sum();
    compare(
        "port-blocked share of cycles (per pair)",
        blocked as f64 / (cycles * 4) as f64,
        "~0.08",
    );
    let conflicts: u64 = suite.runs.iter().map(|r| r.cache.port_conflicts).sum();
    let accesses: u64 = suite.runs.iter().map(|r| r.cache.accesses()).sum();
    compare(
        "demand accesses retried due to refresh",
        conflicts as f64 / accesses as f64,
        "small (hidden by under-utilization)",
    );
    println!("\nhardware overhead: one global counter (negligible; §4.1).");
}
