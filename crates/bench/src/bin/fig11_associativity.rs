//! Figure 11: performance of the three line-level schemes on the
//! good/median/bad chips across associativities (1/2/4/8-way).
//!
//! Paper shape: with ≥2 ways the retention-aware schemes can steer around
//! dead lines and RSP-FIFO / partial-refresh-DSP clearly beat
//! no-refresh/LRU on the bad chip; direct-mapped caches get no placement
//! benefit (only refresh helps).

use bench_harness::{banner, compare, RunScale};
use cachesim::Scheme;
use t3cache::chip::{ChipGrade, ChipPopulation};
use t3cache::evaluate::Evaluator;
use vlsi::tech::TechNode;
use vlsi::variation::VariationCorner;

fn main() {
    let scale = RunScale::detect();
    banner(
        "Figure 11",
        "schemes vs associativity on good/median/bad chips (severe, 32 nm)",
    );
    let pop = ChipPopulation::generate(
        TechNode::N32,
        VariationCorner::Severe.params(),
        scale.sim_chips.max(40),
        20_246,
    );
    let eval = Evaluator::new(scale.eval_config(TechNode::N32));

    let schemes = [
        ("no-refresh/LRU", Scheme::no_refresh_lru()),
        ("partial-refresh/DSP", Scheme::partial_refresh_dsp()),
        ("RSP-FIFO", Scheme::rsp_fifo()),
    ];
    let mut bad_gap_4way = 0.0;
    let mut bad_gap_1way = 0.0;

    for grade in [ChipGrade::Good, ChipGrade::Median, ChipGrade::Bad] {
        let chip = pop.select(grade);
        println!();
        println!("{} chip:", grade);
        println!("{:<22} {:>8} {:>8} {:>8} {:>8}", "scheme", "1-way", "2-way", "4-way", "8-way");
        let mut table = Vec::new();
        for (name, scheme) in &schemes {
            let mut row = Vec::new();
            for ways in [1u32, 2, 4, 8] {
                let ideal = eval.run_ideal(ways);
                let suite = eval.run_scheme(chip.retention_profile(), *scheme, ways);
                row.push(suite.normalized_performance(&ideal, 1.0));
            }
            println!(
                "{:<22} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
                name, row[0], row[1], row[2], row[3]
            );
            table.push(row);
        }
        if matches!(grade, ChipGrade::Bad) {
            bad_gap_4way = table[2][2] - table[0][2];
            bad_gap_1way = table[2][0] - table[0][0];
        }
    }

    println!();
    compare(
        "bad chip, 4-way: RSP-FIFO advantage over no-refresh/LRU",
        bad_gap_4way,
        "significant (placement works)",
    );
    compare(
        "bad chip, 1-way: RSP-FIFO advantage over no-refresh/LRU",
        bad_gap_1way,
        "~0 (no placement freedom)",
    );
}
