//! Thin wrapper: Figure 11 associativity sweep. The core logic lives in
//! [`bench_harness::figures::fig11`] so the `pv3t1d` orchestrator can run
//! it as a DAG stage; this binary keeps the historical standalone CLI
//! (`--quick`, `--json <path>`).

fn main() {
    bench_harness::cli::figure_main("fig11", bench_harness::figures::fig11::run);
}
