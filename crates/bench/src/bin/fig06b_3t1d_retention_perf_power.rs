//! Thin wrapper: Figure 6b retention/performance/power study. The core
//! logic lives in [`bench_harness::figures::fig06b`] so the `pv3t1d`
//! orchestrator can run it as a DAG stage; this binary keeps the
//! historical standalone CLI (`--quick`, `--json <path>`).

fn main() {
    bench_harness::cli::figure_main("fig06b", bench_harness::figures::fig06b::run);
}
