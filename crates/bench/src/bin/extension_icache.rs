//! Extension: a 3T1D L1 *instruction* cache.
//!
//! The paper's intro claims dynamic cells suit "on-chip memory structures
//! within the processor core such as register files and caches"; it
//! evaluates only the D-cache. This experiment replays the instruction-
//! fetch stream (the workload model's basic-block PCs) through the same
//! retention-aware cache model configured as the Table 2 I-cache, on
//! severely varied chips.
//!
//! Measured verdict: fetch blocks are re-referenced over *longer*
//! timescales than the hot data (loop bodies return after whole program
//! phases), so a retention-limited L1I loses a few percent of hit rate on
//! varied chips — but every expiry recovery is a cheap read-only L2
//! re-fetch, and the RSP/DSP machinery carries over unchanged.

use bench_harness::{banner, compare};
use cachesim::{AccessKind, CacheConfig, CounterSpec, DataCache, RetentionProfile, Scheme};
use t3cache::chip::{ChipGrade, ChipPopulation};
use uarch::instr::TraceSource;
use vlsi::tech::TechNode;
use vlsi::variation::VariationCorner;
use workloads::{SpecBenchmark, SyntheticTrace};

/// Replays fetch-block transitions of `n` instructions through a cache,
/// at ≈1.25 cycles per instruction. Returns (hit rate, expiry misses).
fn run_fetch_stream(
    cache: &mut DataCache,
    bench: SpecBenchmark,
    n: u64,
) -> (f64, u64) {
    let mut trace = SyntheticTrace::new(bench.profile(), 17);
    let mut last_block = u64::MAX;
    let mut cycle = 0u64;
    for i in 0..n {
        let instr = trace.next_instr();
        cycle = i + i / 4; // ≈0.8 IPC fetch pacing
        let block = instr.pc / 64;
        if block != last_block {
            last_block = block;
            let _ = cache.access(cycle, instr.pc & !63, AccessKind::Load);
        }
    }
    cache.advance(cycle + 1);
    let s = cache.stats();
    (
        s.hits as f64 / s.accesses().max(1) as f64,
        s.expiry_misses,
    )
}

fn main() {
    let scale = bench_harness::cli::BenchArgs::parse().scale();
    banner(
        "Extension: 3T1D instruction cache",
        "fetch streams through retention-aware 64KB L1I (severe, 32 nm)",
    );
    let pop = ChipPopulation::generate(
        TechNode::N32,
        VariationCorner::Severe.params(),
        scale.sim_chips.max(40),
        20_251,
    );
    let chip = pop.select(ChipGrade::Median);
    println!(
        "median chip: {:.1}% dead lines, cache retention {:.0} ns",
        chip.dead_fraction() * 100.0,
        chip.cache_retention().ns()
    );
    println!();
    println!(
        "{:<8} {:>12} {:>14} {:>14} {:>12}",
        "bench", "ideal hit%", "3T1D RSP hit%", "3T1D LRU hit%", "expiry (LRU)"
    );

    let n = scale.instructions * 2;
    let mut worst_drop: f64 = 0.0;
    for bench in [
        SpecBenchmark::Gcc,
        SpecBenchmark::Crafty,
        SpecBenchmark::Mesa,
        SpecBenchmark::Mcf,
    ] {
        let mut ideal = DataCache::new(
            CacheConfig::paper(Scheme::default()),
            RetentionProfile::Infinite,
        );
        let (h_ideal, _) = run_fetch_stream(&mut ideal, bench, n);

        let counter = CounterSpec::for_profile(chip.retention_profile());
        let mut cfg = CacheConfig::paper(Scheme::rsp_fifo());
        cfg.counter = counter;
        let mut rsp = DataCache::new(cfg, chip.retention_profile().clone());
        let (h_rsp, _) = run_fetch_stream(&mut rsp, bench, n);

        let mut cfg = CacheConfig::paper(Scheme::no_refresh_lru());
        cfg.counter = counter;
        let mut lru = DataCache::new(cfg, chip.retention_profile().clone());
        let (h_lru, expiry) = run_fetch_stream(&mut lru, bench, n);

        worst_drop = worst_drop.max(h_ideal - h_rsp);
        println!(
            "{:<8} {:>11.2}% {:>13.2}% {:>13.2}% {:>12}",
            bench.to_string(),
            h_ideal * 100.0,
            h_rsp * 100.0,
            h_lru * 100.0,
            expiry
        );
    }
    println!();
    compare(
        "worst fetch hit-rate drop, RSP-FIFO vs ideal",
        worst_drop,
        "a few % — code returns after long phases",
    );
    println!("\nmeasured caveat to the paper's generality claim: code re-reference");
    println!("intervals exceed the hot-data ages of Fig. 1, so an L1I built from");
    println!("3T1D cells pays a few percent of fetch hit rate on varied chips.");
    println!("The losses are benign (read-only lines: expiry costs one L2 re-fetch,");
    println!("never a write-back) and RSP placement recovers part of the gap.");
}
