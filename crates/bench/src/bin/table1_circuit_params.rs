//! Table 1: circuit-simulation parameters per technology node, plus the
//! derived electrical quantities the models use.

use bench_harness::banner;
use vlsi::tech::{OperatingPoint, TechNode};
use vlsi::wire;

fn main() {
    banner("Table 1", "circuit parameters per technology node");
    println!(
        "{:<26} {:>10} {:>10} {:>10}",
        "parameter", "65nm", "45nm", "32nm"
    );
    let row = |name: &str, f: &dyn Fn(TechNode) -> String| {
        println!(
            "{:<26} {:>10} {:>10} {:>10}",
            name,
            f(TechNode::N65),
            f(TechNode::N45),
            f(TechNode::N32)
        );
    };
    row("cell area (um^2)", &|n| format!("{:.2}", n.cell_area_um2()));
    row("wire width (um)", &|n| format!("{:.2}", n.wire_width().um()));
    row("wire thickness (um)", &|n| {
        format!("{:.2}", n.wire_thickness().um())
    });
    row("oxide thickness (nm)", &|n| {
        format!("{:.1}", n.oxide_thickness().nm())
    });
    row("chip frequency (GHz)", &|n| {
        format!("{:.1}", n.chip_frequency().ghz())
    });
    println!();
    println!("derived quantities (our models):");
    row("supply voltage (V)", &|n| format!("{:.1}", n.vdd().volts()));
    row("nominal Vth (V)", &|n| format!("{:.2}", n.vth_nominal().volts()));
    row("clock period (ps)", &|n| {
        format!("{:.1}", n.clock_period().ps())
    });
    row("6T array access (ps)", &|n| {
        format!("{:.0}", n.sram_access_nominal().ps())
    });
    row("bitline length (um)", &|n| {
        format!("{:.1}", wire::bitline(n, 256).length().um())
    });
    row("bitline cap (fF)", &|n| {
        format!("{:.1}", wire::bitline_capacitance(n, 256).ff())
    });
    println!();
    println!(
        "simulation temperature: 80 C (thermal voltage {:.1} mV)",
        OperatingPoint::nominal(TechNode::N32).thermal_voltage().mv()
    );
}
