//! Thin wrapper: §2.1 6T stability table. The core logic lives in
//! [`bench_harness::figures::sec21`] so the `pv3t1d` orchestrator can run
//! it as a DAG stage; this binary keeps the historical standalone CLI
//! (`--quick`, `--json <path>`).

fn main() {
    bench_harness::cli::figure_main("sec21_stability", bench_harness::figures::sec21::stability);
}
