//! §2.1: 6T SRAM read-stability under variation — bit-flip rates and the
//! line-level redundancy argument.
//!
//! Paper anchors: ≈0.4 % bit-flip rate at 32 nm under typical variation,
//! which makes a 256-bit line fail with probability 1 − 0.996²⁵⁶ ≈ 64 %;
//! 3T1D cells have no fighting and are stable.

use bench_harness::{banner, RunRecorder};
use t3cache::campaign::map_indexed;
use vlsi::cell6t::{bit_flip_probability, line_failure_probability, CellSize};
use vlsi::tech::TechNode;
use vlsi::variation::VariationCorner;

fn main() {
    let mut rec = RunRecorder::from_args("sec21_stability");
    banner("Section 2.1", "6T cell stability under process variation");
    // Analytic study, but run through the campaign engine like its sim
    // siblings: one unit per (node, corner) cell of the table.
    let corners = [VariationCorner::Typical, VariationCorner::Severe];
    let units = TechNode::ALL.len() * corners.len();
    let (rows, report) = map_indexed(units, |i| {
        let node = TechNode::ALL[i / corners.len()];
        let corner = corners[i % corners.len()];
        let p = bit_flip_probability(node, CellSize::X1, &corner.params());
        (node, corner, p)
    });
    report.export(rec.metrics());
    println!("{}", report.banner_line());
    println!();
    println!(
        "{:<10} {:<10} {:>14} {:>16} {:>16}",
        "node", "corner", "bit flip", "256b line fail", "512b line fail"
    );
    for (node, corner, p) in rows {
        rec.metrics()
            .set_gauge(&format!("bit_flip.{node}.{corner}"), p);
        println!(
            "{:<10} {:<10} {:>13.4}% {:>15.1}% {:>15.1}%",
            node.to_string(),
            corner.to_string(),
            p * 100.0,
            line_failure_probability(p, 256) * 100.0,
            line_failure_probability(p, 512) * 100.0
        );
    }
    println!();
    let p32 = bit_flip_probability(
        TechNode::N32,
        CellSize::X1,
        &VariationCorner::Typical.params(),
    );
    rec.compare("32nm typical bit-flip rate (%)", p32 * 100.0, "~0.4%");
    rec.compare(
        "256-bit line failure probability",
        line_failure_probability(p32, 256),
        "~0.64",
    );
    let p2x = bit_flip_probability(
        TechNode::N32,
        CellSize::X2,
        &VariationCorner::Typical.params(),
    );
    rec.compare("32nm 2X-cell bit-flip rate (%)", p2x * 100.0, "far below 1X (area law)");
    println!("\n3T1D cells have no read-disturb fighting: stability is not a failure mode;");
    println!("their only 'instability' is finite retention, handled architecturally (Section 4).");
    rec.finish();
}
