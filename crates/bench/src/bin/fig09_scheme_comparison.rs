//! Thin wrapper: Figure 9 scheme comparison. The core logic lives in
//! [`bench_harness::figures::fig09`] so the `pv3t1d` orchestrator can run
//! it as a DAG stage; this binary keeps the historical standalone CLI
//! (`--quick`, `--json <path>`).

fn main() {
    bench_harness::cli::figure_main("fig09", bench_harness::figures::fig09::run);
}
