//! Figure 9: normalized performance of the eight line-level retention
//! schemes on the good, median and bad chips under severe variation.
//!
//! Paper shape: LRU-only schemes suffer most on the bad chip (dead-line
//! references); partial refresh buys 1–2 % over no-refresh; full refresh
//! gives some of it back (~1 % blocking penalty); the intrinsic-refresh
//! RSP schemes perform best.

use bench_harness::{banner, RunRecorder, RunScale};
use cachesim::Scheme;
use t3cache::campaign::evaluate_grid;
use t3cache::chip::{ChipGrade, ChipModel, ChipPopulation};
use t3cache::evaluate::Evaluator;
use vlsi::tech::TechNode;
use vlsi::variation::VariationCorner;

fn main() {
    let scale = RunScale::detect();
    let mut rec = RunRecorder::from_args("fig09");
    rec.manifest.seed = Some(20_244);
    rec.manifest.tech_node = Some(TechNode::N32.to_string());
    banner(
        "Figure 9",
        "retention schemes on good/median/bad chips (severe, 32 nm)",
    );
    let pop = ChipPopulation::generate(
        TechNode::N32,
        VariationCorner::Severe.params(),
        scale.sim_chips.max(40),
        20_244,
    );
    let eval = Evaluator::new(scale.eval_config(TechNode::N32));
    let ideal = eval.run_ideal(4);

    let schemes = Scheme::figure9_schemes();
    // One campaign over the schemes × {good, median, bad} grid.
    let exemplars: Vec<&ChipModel> = [ChipGrade::Good, ChipGrade::Median, ChipGrade::Bad]
        .iter()
        .map(|&g| pop.select(g))
        .collect();
    let grid = evaluate_grid(&eval, &exemplars, &schemes, &ideal);
    let labels: Vec<String> = schemes.iter().map(Scheme::to_string).collect();
    grid.export(rec.metrics(), &labels);
    println!("{}", grid.report.banner_line());
    println!();

    println!("{:<28} {:>8} {:>8} {:>8}", "scheme", "good", "median", "bad");
    let mut results = Vec::new();
    for (s, scheme) in schemes.iter().enumerate() {
        let row = grid.perfs(s);
        println!(
            "{:<28} {:>8.3} {:>8.3} {:>8.3}",
            scheme.to_string(),
            row[0],
            row[1],
            row[2]
        );
        for (grade, &perf) in ["good", "median", "bad"].iter().zip(&row) {
            rec.metrics()
                .set_gauge(&format!("scheme.{scheme}.perf.{grade}"), perf);
        }
        results.push((scheme.to_string(), row));
    }

    println!();
    let bad = |name: &str| {
        results
            .iter()
            .find(|(n, _)| n.starts_with(name))
            .map(|(_, r)| r[2])
            .expect("scheme present")
    };
    rec.compare(
        "bad chip: DSP gain over plain LRU (no-refresh)",
        bad("no-refresh/DSP") - bad("no-refresh/LRU"),
        "large, dead-line avoidance",
    );
    rec.compare(
        "bad chip: RSP-FIFO vs no-refresh/LRU",
        bad("RSP-FIFO") - bad("no-refresh/LRU"),
        "RSP best overall",
    );
    rec.compare(
        "median chip: partial vs no refresh (DSP)",
        results
            .iter()
            .find(|(n, _)| n.starts_with("partial-refresh") && n.ends_with("DSP"))
            .map(|(_, r)| r[1])
            .unwrap()
            - results
                .iter()
                .find(|(n, _)| n == "no-refresh/DSP")
                .map(|(_, r)| r[1])
                .unwrap(),
        "+0.01..0.02",
    );
    rec.finish();
}
