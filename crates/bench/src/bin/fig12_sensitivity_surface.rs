//! Thin wrapper: Figure 12 µ–σ/µ sensitivity surface. The core logic
//! lives in [`bench_harness::figures::fig12`] so the `pv3t1d`
//! orchestrator can run it as a DAG stage; this binary keeps the
//! historical standalone CLI (`--quick`, `--json <path>`).

fn main() {
    bench_harness::cli::figure_main("fig12_surface", bench_harness::figures::fig12::surface);
}
