//! Figure 12: µ–σ/µ performance surfaces for the three line-level schemes.
//!
//! Paper shape: σ/µ matters more than µ (dead lines dominate); a sharp
//! performance drop appears beyond σ/µ ≈ 25 %; larger µ helps at fixed
//! σ/µ; the retention-aware schemes dominate no-refresh almost everywhere.

use bench_harness::{banner, metric_slug, RunRecorder, RunScale};
use cachesim::Scheme;
use t3cache::campaign::CampaignReport;
use t3cache::evaluate::Evaluator;
use t3cache::sensitivity::SensitivitySweep;
use vlsi::tech::TechNode;
use workloads::SpecBenchmark;

fn main() {
    let scale = RunScale::detect();
    let mut rec = RunRecorder::from_args("fig12_surface");
    rec.manifest.tech_node = Some(TechNode::N32.to_string());
    banner(
        "Figure 12",
        "performance vs retention-time mean and variation (three schemes)",
    );

    // Use a 4-benchmark subset to keep the 56-point grid tractable; the
    // subset spans the memory-intensity range.
    let mut cfg = scale.eval_config(TechNode::N32);
    cfg.benchmarks = vec![
        SpecBenchmark::Gzip,
        SpecBenchmark::Gcc,
        SpecBenchmark::Mcf,
        SpecBenchmark::Mesa,
    ];
    cfg.instructions = (cfg.instructions / 2).max(20_000);
    cfg.warmup = (cfg.warmup / 2).max(10_000);
    let eval = Evaluator::new(cfg);
    let ideal = eval.run_ideal(4);

    let mut sweep = SensitivitySweep::paper_grid();
    if scale.sim_chips < 40 {
        sweep = SensitivitySweep {
            mus: vec![2_000, 10_000, 18_000, 30_000],
            ratios: vec![0.05, 0.15, 0.25, 0.35],
            chips_per_point: 1,
            ..sweep
        };
    }

    let schemes = [
        ("no-refresh/LRU", Scheme::no_refresh_lru()),
        ("partial-refresh/DSP (dead-line sensitive)", Scheme::partial_refresh_dsp()),
        ("RSP-FIFO (retention sensitive)", Scheme::rsp_fifo()),
    ];

    let mut cliff = (0.0f64, 0.0f64); // no-refresh perf at σ/µ=0.25 vs 0.35, low µ
    let mut aware_vs_naive = 0.0;
    let mut timing = CampaignReport::empty();
    for (si, (name, scheme)) in schemes.iter().enumerate() {
        println!();
        println!("{name}:");
        // Each scheme's µ–σ/µ grid fans out as one campaign of
        // independent grid-point units.
        let (pts, report) = sweep.run_timed(&eval, *scheme, &ideal);
        timing.absorb(&report);
        let scheme_slug = metric_slug(name);
        for p in &pts {
            rec.metrics().set_gauge(
                &format!(
                    "surface.{scheme_slug}.mu{}.r{:02.0}",
                    p.mu_cycles,
                    p.sigma_over_mu * 100.0
                ),
                p.performance,
            );
        }
        print!("{:>10}", "mu\\s/mu");
        for r in &sweep.ratios {
            print!("{:>8.0}%", r * 100.0);
        }
        println!();
        for (i, &mu) in sweep.mus.iter().enumerate() {
            print!("{mu:>10}");
            for j in 0..sweep.ratios.len() {
                let p = &pts[i * sweep.ratios.len() + j];
                print!("{:>9.3}", p.performance);
            }
            println!();
        }
        // Bookkeeping for the headline comparisons.
        let find = |mu: u64, ratio: f64| {
            pts.iter()
                .find(|p| p.mu_cycles == mu && (p.sigma_over_mu - ratio).abs() < 1e-9)
                .map(|p| p.performance)
        };
        let low_mu = sweep.mus[0];
        if si == 0 {
            if let (Some(a), Some(b)) = (find(low_mu, 0.25), find(low_mu, 0.35)) {
                cliff = (a, b);
            }
            aware_vs_naive -= find(low_mu, 0.35).unwrap_or(0.0);
        }
        if si == 1 {
            aware_vs_naive += find(low_mu, 0.35).unwrap_or(0.0);
        }
    }

    println!();
    println!("{}", timing.banner_line());
    timing.export(rec.metrics());
    println!();
    rec.compare(
        "no-refresh/LRU drop from s/u=25% to 35% (low mu)",
        cliff.0 - cliff.1,
        "sudden drop past 25% (Fig. 12, dead lines)",
    );
    rec.compare(
        "retention-aware advantage over no-refresh (35%, low mu)",
        aware_vs_naive,
        "positive nearly everywhere",
    );
    rec.finish();
}
