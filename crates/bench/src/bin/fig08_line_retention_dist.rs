//! Figure 8: per-line retention-time distribution of the good, median and
//! bad chips under severe variation.
//!
//! Paper shape: wide spread across lines within one chip; up to 23 % dead
//! lines on the bad chip, ≈3 % on the median chip; ≈80 % of chips must be
//! discarded under the global scheme.

use bench_harness::{bar, banner};
use cachesim::{CacheConfig, Scheme};
use t3cache::chip::{ChipGrade, ChipPopulation};
use vlsi::stats::Histogram;
use vlsi::tech::TechNode;
use vlsi::variation::VariationCorner;

fn main() {
    let args = bench_harness::cli::BenchArgs::parse();
    let scale = args.scale();
    let mut rec = args.recorder("fig08");
    rec.manifest.seed = Some(20_243);
    rec.manifest.tech_node = Some(TechNode::N32.to_string());
    banner(
        "Figure 8",
        "line retention distributions of good/median/bad chips (severe, 32 nm)",
    );
    let pop = ChipPopulation::generate(
        TechNode::N32,
        VariationCorner::Severe.params(),
        scale.sim_chips.max(40),
        20_243,
    );
    for grade in [ChipGrade::Good, ChipGrade::Median, ChipGrade::Bad] {
        let chip = pop.select(grade);
        let counter = chip.counter_spec();
        let mut hist = Histogram::new(0.0, 5_000.0, 10);
        for t in chip.retention_times() {
            hist.push(t.ns());
        }
        let dead = chip.dead_line_fraction(&counter);
        let grade_slug = grade.to_string().to_lowercase();
        rec.metrics()
            .set_gauge(&format!("chip.{grade_slug}.dead_line_fraction"), dead);
        let sum: f64 = chip.retention_times().iter().map(|t| t.ns()).sum();
        rec.metrics().put_histogram(
            &format!("chip.{grade_slug}.line_retention_ns"),
            obs::FixedHistogram::from_buckets(
                0.0,
                5_000.0,
                hist.counts().to_vec(),
                hist.underflow(),
                hist.overflow(),
                sum,
            ),
        );
        println!();
        println!(
            "{} chip (#{}) — dead lines: {:.1}%",
            grade,
            chip.index(),
            dead * 100.0
        );
        println!("  retention (ns)   line probability");
        for (center, frac) in hist.iter() {
            println!("  {center:>10.0}  {frac:>6.3} {}", bar(frac / 0.45, 30));
        }
        if hist.overflow() > 0 {
            println!(
                "  {:>10}  {:>6.3}",
                ">5000",
                hist.overflow() as f64 / hist.total() as f64
            );
        }
    }

    println!();
    let median_dead = pop.select(ChipGrade::Median).dead_fraction();
    let bad_dead = pop.select(ChipGrade::Bad).dead_fraction();
    rec.compare("median chip dead-line fraction", median_dead, "~0.03");
    rec.compare("bad chip dead-line fraction", bad_dead, "~0.23");
    let cfg = CacheConfig::paper(Scheme::global());
    rec.compare(
        "global-scheme discard fraction (severe)",
        pop.global_scheme_discard_fraction(&cfg),
        "~0.80",
    );
    rec.finish();
}
