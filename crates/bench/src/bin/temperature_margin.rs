//! §4.3.1 extended: the retention margin left on the table by worst-case-
//! temperature counter programming ("Although dynamic testing is possible,
//! we assume worst-case temperatures in this paper").
//!
//! The line counters are programmed from a BIST measurement at 80 °C; at
//! realistic die temperatures retention is several times longer, so a
//! dynamic (temperature-aware) counter policy could cut refresh energy by
//! the same factor.

use bench_harness::{banner, compare};
use t3cache::chip::ChipPopulation;
use vlsi::cell3t1d::retention_temperature_factor;
use vlsi::tech::TechNode;
use vlsi::variation::VariationCorner;

fn main() {
    banner(
        "Section 4.3.1 (extended)",
        "retention vs die temperature: worst-case testing margin",
    );
    println!("{:>8} {:>18} {:>24}", "temp", "retention factor", "median cache retention");
    let pop = ChipPopulation::generate(TechNode::N32, VariationCorner::Typical.params(), 40, 7);
    let base = pop.median_cache_retention();
    for t in [40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0] {
        let f = retention_temperature_factor(t);
        println!(
            "{:>6.0}C {:>17.2}x {:>21.0} ns",
            t,
            f,
            base.ns() * f
        );
    }
    println!();
    compare(
        "retention factor at a 50C operating point",
        retention_temperature_factor(50.0),
        "several-x margin vs 80C testing",
    );
    compare(
        "implied refresh-energy saving with dynamic testing",
        1.0 - 1.0 / retention_temperature_factor(50.0),
        "refresh rate scales with 1/retention",
    );
    println!("\nworst-case programming is safe at any temperature <= 80C; a dynamic");
    println!("policy would re-measure per thermal epoch, trading BIST time for the");
    println!("refresh power above (future work the paper points at).");
}
