//! End-to-end manifest tests: run the real figure binaries as
//! subprocesses with `--json`, then feed the emitted files back through
//! the `obs` parser. This is the contract the CI artifact pipeline and
//! any manifest-diffing tooling rely on.

use obs::RunManifest;
use std::path::PathBuf;
use std::process::Command;

fn run_binary(exe: &str, json_path: &PathBuf, quick: bool) {
    let mut cmd = Command::new(exe);
    cmd.arg("--json").arg(json_path);
    if quick {
        cmd.env("PV3T1D_QUICK", "1");
    }
    let out = cmd.output().expect("binary must launch");
    assert!(
        out.status.success(),
        "{exe} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("manifest:"),
        "{exe} must announce its manifest path"
    );
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pv3t1d_manifest_{}_{name}", std::process::id()))
}

#[test]
fn sec21_manifest_round_trips() {
    let path = temp_path("sec21.json");
    run_binary(env!("CARGO_BIN_EXE_sec21_stability"), &path, true);
    let m = RunManifest::read_from(&path).unwrap();
    assert_eq!(m.name, "sec21_stability");
    assert!(m.wall_seconds > 0.0);
    assert!(m.workers >= 1);
    // The analytic bit-flip table is a result metric, present and finite.
    let p32 = m
        .metrics
        .gauge("bit_flip.32nm.typical")
        .expect("bit-flip gauge present");
    assert!(p32 > 0.0 && p32 < 1.0);
    assert!(!m.deterministic_fingerprint().is_empty());

    // Round-trip again: write the parsed manifest and re-read it.
    let copy = temp_path("sec21_copy.json");
    m.write_to(&copy).unwrap();
    let back = RunManifest::read_from(&copy).unwrap();
    assert_eq!(m.deterministic_fingerprint(), back.deterministic_fingerprint());
    assert_eq!(m.metrics.to_json().render(), back.metrics.to_json().render());
    std::fs::remove_file(&path).unwrap();
    std::fs::remove_file(&copy).unwrap();
}

#[test]
fn fig09_manifest_round_trips() {
    // The acceptance-criteria run: the real Figure 9 binary in quick mode,
    // manifest parsed back and checked for the scheme-comparison metrics.
    let path = temp_path("fig09.json");
    run_binary(env!("CARGO_BIN_EXE_fig09_scheme_comparison"), &path, true);
    let m = RunManifest::read_from(&path).unwrap();
    assert_eq!(m.name, "fig09");
    assert_eq!(m.seed, Some(20_244));
    assert_eq!(m.tech_node.as_deref(), Some("32nm"));
    assert!(m.quick, "PV3T1D_QUICK=1 must be recorded");

    // Every Figure 9 scheme exports a per-grade performance gauge and a
    // merged cache-counter block.
    for scheme in cachesim::Scheme::figure9_schemes() {
        for grade in ["good", "median", "bad"] {
            let g = m
                .metrics
                .gauge(&format!("scheme.{scheme}.perf.{grade}"))
                .unwrap_or_else(|| panic!("missing perf gauge for {scheme}/{grade}"));
            assert!(g > 0.5 && g <= 1.5, "{scheme}/{grade} perf {g} out of range");
        }
        assert!(
            m.metrics
                .counter(&format!("scheme.{scheme}.chips"))
                .is_some(),
            "missing merged counters for {scheme}"
        );
    }
    // Campaign telemetry rides along but stays out of the fingerprint.
    assert!(m.metrics.counter("campaign.units").is_some());
    let fp = m.deterministic_fingerprint();
    assert!(!fp.is_empty());
    assert!(!fp.contains("campaign."), "timing metrics must not be fingerprinted");

    // Full byte-level round trip through render + parse.
    let copy = temp_path("fig09_copy.json");
    m.write_to(&copy).unwrap();
    let back = RunManifest::read_from(&copy).unwrap();
    assert_eq!(back.seed, Some(20_244));
    assert_eq!(m.metrics.to_json().render(), back.metrics.to_json().render());
    assert_eq!(fp, back.deterministic_fingerprint());
    std::fs::remove_file(&path).unwrap();
    std::fs::remove_file(&copy).unwrap();
}

#[test]
fn default_manifest_path_lands_in_results_dir() {
    // Without --json the recorder must write results/<name>.json relative
    // to the working directory.
    let dir = temp_path("cwd");
    std::fs::create_dir_all(&dir).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_fig12_design_points"))
        .env("PV3T1D_QUICK", "1")
        .current_dir(&dir)
        .output()
        .expect("binary must launch");
    assert!(out.status.success());
    let m = RunManifest::read_from(&dir.join("results/fig12_points.json")).unwrap();
    assert_eq!(m.name, "fig12_points");
    std::fs::remove_dir_all(&dir).unwrap();
}
